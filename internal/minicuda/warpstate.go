package minicuda

// Warp-execution state: struct-of-arrays register banks plus the strand
// bookkeeping the warp engine in warp.go schedules over. One warpState
// services a whole warp (and is pooled across warps of a launch), exactly
// as one vmState services a thread in vm.go.
//
// Register layout is struct-of-arrays with the warp's live-lane count W as
// the stride: logical register r of a strand whose window base is b lives
// at bank[(b+r)*W + lane]. Two strands can only share a register row when
// their windows coincide (same call depth along the same call chain), and
// strands of one warp always hold disjoint lane sets, so concurrent
// strands never alias a (row, lane) cell.

import (
	"sync"

	"webgpu/internal/gpusim"
)

// strand is a group of lanes executing in lockstep at one program point.
// A warp starts as a single strand holding every lane; a divergent branch
// splits a strand in two, and strands whose control state becomes
// identical again (same pc, function, register windows, and call stack)
// are merged back by the scheduler — reconvergence without an explicit
// post-dominator analysis.
type strand struct {
	pc         int32
	fn         *bcFunc
	bI, bF, bP int32
	depth      int32
	stack      []vmRet

	lanes []int32 // active lanes, ascending
	// Step-budget accounting: lane l has consumed steps+base[l] steps.
	// base is indexed by lane id and only meaningful for active lanes;
	// maxBase caches the maximum over the active set so the per-instruction
	// budget check is a single compare (steps+maxBase > maxSteps).
	steps   int64
	base    []int64
	maxBase int64

	gen int // barrier generation while parked at a __syncthreads
}

// chargeAcc batches the compute-side cost charges of a whole warp. Only
// block-level sums are observable through LaunchStats (collectBlock sums
// per-thread stats), so ALU/special/branch/barrier charges accumulate here
// and flush into one lane's ThreadCtx when the warp finishes. Memory
// traffic is NOT batched: every access goes through the owning lane's
// ThreadCtx so the per-thread event logs driving the coalescing cost model
// stay identical to the per-thread engines.
type chargeAcc struct {
	alu, special, branches, barriers int64
}

// warpState holds the SoA register banks, lane metadata, and strand
// scratch for one warp. Reused across warps via warpStatePool.
type warpState struct {
	W      int // lane stride (live lanes in this warp)
	ints   []int64
	floats []float64
	ptrs   []Pointer
	lanes  []*gpusim.ThreadCtx
	dims   [][12]int // per-lane builtin dims, layout as vm.go's dims
	acc    chargeAcc

	strands []*strand // recycle list
}

var warpStatePool = sync.Pool{New: func() any { return new(warpState) }}

// init prepares the state for one warp's lanes.
func (ws *warpState) init(wc *gpusim.WarpCtx) {
	W := len(wc.Lanes)
	ws.W = W
	ws.lanes = append(ws.lanes[:0], wc.Lanes...)
	if cap(ws.dims) < W {
		ws.dims = make([][12]int, W)
	}
	ws.dims = ws.dims[:W]
	for l, tc := range wc.Lanes {
		d := &ws.dims[l]
		d[0], d[1], d[2] = tc.ThreadIdx.X, tc.ThreadIdx.Y, tc.ThreadIdx.Z
		d[3], d[4], d[5] = tc.BlockIdx.X, tc.BlockIdx.Y, tc.BlockIdx.Z
		d[6], d[7], d[8] = tc.BlockDim.X, tc.BlockDim.Y, tc.BlockDim.Z
		d[9], d[10], d[11] = tc.GridDim.X, tc.GridDim.Y, tc.GridDim.Z
	}
	ws.acc = chargeAcc{}
}

// flush dumps the batched compute charges into one lane's ThreadCtx.
func (ws *warpState) flush() {
	if len(ws.lanes) == 0 {
		return
	}
	tc := ws.lanes[0]
	if ws.acc.alu != 0 {
		tc.CountALU(int(ws.acc.alu))
	}
	if ws.acc.special != 0 {
		tc.CountSpecial(int(ws.acc.special))
	}
	if ws.acc.branches != 0 {
		tc.CountBranches(int(ws.acc.branches))
	}
	if ws.acc.barriers != 0 {
		tc.CountBarriers(int(ws.acc.barriers))
	}
	ws.acc = chargeAcc{}
}

// newStrand returns a zeroed strand with capacity recycled from earlier
// splits, its base slice sized to the warp.
func (ws *warpState) newStrand() *strand {
	var s *strand
	if n := len(ws.strands); n > 0 {
		s = ws.strands[n-1]
		ws.strands = ws.strands[:n-1]
	} else {
		s = new(strand)
	}
	s.pc, s.fn, s.bI, s.bF, s.bP, s.depth = 0, nil, 0, 0, 0, 0
	s.stack = s.stack[:0]
	s.lanes = s.lanes[:0]
	s.steps, s.maxBase = 0, 0
	s.base = grow(s.base, ws.W)
	s.gen = 0
	return s
}

// freeStrand recycles a strand's backing storage.
func (ws *warpState) freeStrand(s *strand) {
	ws.strands = append(ws.strands, s)
}

// recomputeMaxBase refreshes the cached per-lane budget offset maximum.
func (s *strand) recomputeMaxBase() {
	m := int64(0)
	for i, l := range s.lanes {
		if b := s.base[l]; i == 0 || b > m {
			m = b
		}
	}
	s.maxBase = m
}

// sameFrame reports whether two strands are at the same control state and
// can merge: identical pc, function, register windows, depth, and call
// stack contents.
func sameFrame(a, b *strand) bool {
	if a.pc != b.pc || a.fn != b.fn || a.bI != b.bI || a.bF != b.bF ||
		a.bP != b.bP || a.depth != b.depth || len(a.stack) != len(b.stack) {
		return false
	}
	for i := range a.stack {
		if a.stack[i] != b.stack[i] {
			return false
		}
	}
	return true
}

// mergeInto folds o's lanes into s (both at the same control state per
// sameFrame). Per-lane step totals are preserved by rebasing o's lanes
// onto s's shared counter; the lane lists are disjoint and stay ascending.
func (ws *warpState) mergeInto(s, o *strand) {
	for _, l := range o.lanes {
		s.base[l] = o.base[l] + o.steps - s.steps
	}
	s.lanes = mergeLanes(s.lanes, o.lanes)
	s.recomputeMaxBase()
	ws.freeStrand(o)
}

// mergeLanes merges two ascending disjoint lane lists in place of a.
func mergeLanes(a, b []int32) []int32 {
	// Common fast path: all of b after all of a (or vice versa).
	if len(a) == 0 {
		return append(a, b...)
	}
	if b[0] > a[len(a)-1] {
		return append(a, b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return append(a[:0], out...)
}
