package minicuda

import (
	"fmt"
	"os"
	"sync"

	"webgpu/internal/gpusim"
)

// Compile parses and analyzes source, producing an executable Program.
// This is the stage a WebGPU worker node runs when a student presses
// "Compile"; errors are CompileError values formatted like toolchain
// diagnostics. OpenACC source is first translated to CUDA kernels (the
// PGI-compiler role on the paper's workers).
func Compile(src string, dialect Dialect) (*Program, error) {
	if dialect == DialectOpenACC {
		cuda, err := TranslateOpenACC(src)
		if err != nil {
			return nil, err
		}
		prog, err := Compile(cuda, DialectCUDA)
		if err != nil {
			return nil, err
		}
		prog.Dialect = DialectOpenACC
		return prog, nil
	}
	prog, err := Parse(src, dialect)
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	// Lower to bytecode (and the fused warp stream derived from it)
	// eagerly so the artifacts are built once at compile time (and cached
	// alongside the AST in the program cache) rather than on the first
	// launch.
	prog.warpcode()
	return prog, nil
}

// Engine selects the kernel execution engine for a launch.
type Engine uint8

const (
	// EngineAuto uses the warp engine unless MINICUDA_INTERP selects
	// another (or the program could not be lowered).
	EngineAuto Engine = iota
	// EngineVM forces the per-thread bytecode register VM (falls back to
	// the tree walker only when lowering failed).
	EngineVM
	// EngineTree forces the tree-walking interpreter.
	EngineTree
	// EngineWarp forces the warp-vectorized bytecode engine, which decodes
	// each instruction once per warp instead of once per thread. Launches
	// the warp engine cannot serve exactly (SchedSeed-permuted serial
	// order, warps wider than maxWarpLanes, lowering failure) fall back to
	// the VM.
	EngineWarp
)

var (
	engineOnce sync.Once
	engineEnv  Engine
)

// defaultEngine resolves the process-wide engine choice once; the
// MINICUDA_INTERP variable (tree | vm | warp) keeps the older
// interpreters reachable without recompiling.
func defaultEngine() Engine {
	engineOnce.Do(func() {
		switch os.Getenv("MINICUDA_INTERP") {
		case "tree":
			engineEnv = EngineTree
		case "vm":
			engineEnv = EngineVM
		default:
			engineEnv = EngineWarp
		}
	})
	return engineEnv
}

// Arg is a kernel launch argument.
type Arg struct {
	v Value
}

// GlobalPtr builds a kernel argument for a device global-memory pointer
// with the given element type.
func GlobalPtr(p gpusim.Ptr, elem *Type) Arg {
	t := PtrTo(elem, SpaceGlobal)
	return Arg{v: ptrValue(t, Pointer{Space: SpaceGlobal, Elem: elem, Glob: p})}
}

// FloatPtr builds a float* argument.
func FloatPtr(p gpusim.Ptr) Arg { return GlobalPtr(p, TypeFloat) }

// IntPtr builds an int* argument.
func IntPtr(p gpusim.Ptr) Arg { return GlobalPtr(p, TypeInt) }

// UCharPtr builds an unsigned char* argument.
func UCharPtr(p gpusim.Ptr) Arg { return GlobalPtr(p, TypeUChar) }

// Int builds an int scalar argument.
func Int(i int) Arg { return Arg{v: intValue(TypeInt, int64(i))} }

// Float builds a float scalar argument.
func Float(f float32) Arg { return Arg{v: floatValue(float64(f))} }

// LaunchOpts configures a kernel launch.
type LaunchOpts struct {
	Grid           gpusim.Dim3
	Block          gpusim.Dim3
	SharedMemBytes int    // dynamic shared memory, beyond static __shared__
	MaxSteps       int64  // per-thread interpreter step budget; 0 = default
	Engine         Engine // execution engine; EngineAuto honors MINICUDA_INTERP
	SchedSeed      uint64 // serial-path thread-order permutation seed; 0 = natural order
}

// DefaultMaxSteps bounds per-thread interpretation; it corresponds to the
// per-job execution time limit the platform enforces (§III-C).
const DefaultMaxSteps = 4 << 20

// Launch runs the named kernel on dev. Argument count and types must match
// the kernel's parameters (scalars convert; pointers must point to the
// declared element type).
func (p *Program) Launch(dev *gpusim.Device, kernel string, opts LaunchOpts, args ...Arg) (*gpusim.LaunchStats, error) {
	fn := p.Kernel(kernel)
	if fn == nil {
		return nil, fmt.Errorf("minicuda: no kernel named %q (have %v)", kernel, p.Kernels())
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("minicuda: kernel %q takes %d arguments, got %d",
			kernel, len(fn.Params), len(args))
	}
	bound := make([]Value, len(args))
	for i, a := range args {
		pt := fn.Params[i].Type
		av := a.v
		if pt.Kind == KPtr {
			if av.T == nil || av.T.Kind != KPtr {
				return nil, fmt.Errorf("minicuda: argument %d of %q must be a pointer (%s)",
					i+1, kernel, pt)
			}
			if !av.T.Elem.Equal(pt.Elem) && pt.Elem.Kind != KVoid {
				return nil, fmt.Errorf("minicuda: argument %d of %q: have %s, want %s",
					i+1, kernel, av.T, pt)
			}
			q := av.P
			q.Elem = pt.Elem
			bound[i] = ptrValue(pt, q)
		} else {
			bound[i] = convert(av, pt)
		}
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	cfg := gpusim.LaunchConfig{
		Grid:           opts.Grid,
		Block:          opts.Block,
		SharedMemBytes: fn.SharedUse + opts.SharedMemBytes,
		NoBarriers:     !p.usesBarrier,
		SchedSeed:      opts.SchedSeed,
	}
	eng := opts.Engine
	if eng == EngineAuto {
		eng = defaultEngine()
	}
	if eng == EngineWarp {
		// SchedSeed permutes per-thread serial order, which a lockstep warp
		// cannot reproduce; overly wide warps exceed the engine's lane
		// bookkeeping. Both fall back to the per-thread VM.
		if opts.SchedSeed != 0 || dev.Props().WarpSize > maxWarpLanes {
			eng = EngineVM
		} else if wp := p.warpcode(); wp != nil {
			kfn := wp.bc.funcs[fn]
			cfg.NoBarriers = !wp.bc.usesBarrier
			return dev.LaunchWarp(kernel, cfg, func(wc *gpusim.WarpCtx) error {
				return wp.run(wc, kfn, bound, maxSteps)
			})
		} else {
			eng = EngineVM
		}
	}
	if eng != EngineTree {
		if bc := p.bytecode(); bc != nil {
			kfn := bc.funcs[fn]
			cfg.NoBarriers = !bc.usesBarrier
			return dev.Launch(kernel, cfg, func(tc *gpusim.ThreadCtx) error {
				st := vmPool.Get().(*vmState)
				err := bc.run(st, tc, kfn, bound, maxSteps)
				vmPool.Put(st)
				return err
			})
		}
	}
	return dev.Launch(kernel, cfg, func(tc *gpusim.ThreadCtx) error {
		th := &thread{prog: p, tc: tc, maxSteps: maxSteps, dyn: fn.SharedUse}
		fr := make([]Value, fn.NumSlots)
		for i, pd := range fn.Params {
			fr[pd.Sym.Slot] = bound[i]
		}
		_, err := th.execBlock(fr, fn.Body)
		return err
	})
}

// LoadConstant copies host data into the device constant memory backing the
// named __constant__ variable (the host-side cudaMemcpyToSymbol).
func (p *Program) LoadConstant(dev *gpusim.Device, name string, data []byte) error {
	off, ok := p.ConstOffset(name)
	if !ok {
		return fmt.Errorf("minicuda: no __constant__ variable named %q", name)
	}
	return dev.CopyToConst(off, data)
}
