// Package minicuda implements a compiler and interpreter for the subset of
// CUDA C (and, via a dialect switch, OpenCL C) that the WebGPU course labs
// use. It stands in for the nvcc/OpenCL toolchains on the paper's worker
// nodes: student-submitted kernel source is lexed, parsed, type checked,
// and executed thread-per-thread on the gpusim device, so compile errors,
// runtime faults, and performance behaviour all flow back through the
// platform exactly as they would with a real toolchain.
//
// Supported language: int/unsigned/float/bool/char scalar types, pointers,
// fixed-size (multi-dimensional) arrays, __global__/__device__ functions,
// __shared__ and __constant__ memory, control flow (if/else, for, while,
// do-while, break, continue, return), the CUDA builtin index variables,
// __syncthreads, atomics, and a math builtin library. The OpenCL dialect
// adds __kernel/__global/__local qualifiers and the get_global_id family.
package minicuda

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit
	TokPunct
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokCharLit:
		return "char literal"
	case TokStringLit:
		return "string literal"
	case TokPunct:
		return "punctuation"
	}
	return "unknown"
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Pos renders the token position for diagnostics.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

var keywords = map[string]bool{
	"void": true, "int": true, "unsigned": true, "float": true, "double": true,
	"bool": true, "char": true, "long": true, "short": true, "size_t": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "goto": true,
	"const": true, "static": true, "inline": true, "extern": true,
	"struct": true, "union": true, "enum": true, "typedef": true, "sizeof": true,
	"true": true, "false": true,
	"__global__": true, "__device__": true, "__host__": true,
	"__shared__": true, "__constant__": true, "__restrict__": true,
	// OpenCL dialect keywords.
	"__kernel": true, "__global": true, "__local": true, "__private": true,
}

// multi-character punctuation, longest first per leading byte.
var punctTable = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// CompileError is a positioned diagnostic, formatted the way the web UI
// shows compilation failures to students.
type CompileError struct {
	Line int
	Col  int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%d:%d: error: %s", e.Line, e.Col, e.Msg)
}

func errAt(t Token, format string, args ...interface{}) error {
	return &CompileError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes source, stripping // and /* */ comments and preprocessor
// lines (#include, #define of simple constants is handled by Preprocess).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i+1 < n {
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, &CompileError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		case c == '#':
			// Preprocessor directives reach the lexer only if Preprocess was
			// skipped; treat the rest of the line as blank.
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < n && (isIdentChar(src[j])) {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
			advance(j - i)
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			tok, adv, err := lexNumber(src[i:], line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			advance(adv)
		case c == '"':
			startLine, startCol := line, col
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, &CompileError{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokStringLit, Text: src[i+1 : j], Line: startLine, Col: startCol})
			advance(j - i + 1)
		case c == '\'':
			startLine, startCol := line, col
			j := i + 1
			for j < n && src[j] != '\'' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return nil, &CompileError{Line: startLine, Col: startCol, Msg: "unterminated character literal"}
			}
			toks = append(toks, Token{Kind: TokCharLit, Text: src[i+1 : j], Line: startLine, Col: startCol})
			advance(j - i + 1)
		default:
			matched := false
			for _, p := range punctTable {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &CompileError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func lexNumber(s string, line, col int) (Token, int, error) {
	j := 0
	n := len(s)
	isFloat := false
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		j = 2
		for j < n && isHexDigit(s[j]) {
			j++
		}
		for j < n && (s[j] == 'u' || s[j] == 'U' || s[j] == 'l' || s[j] == 'L') {
			j++
		}
		return Token{Kind: TokIntLit, Text: s[:j], Line: line, Col: col}, j, nil
	}
	for j < n && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j < n && s[j] == '.' {
		isFloat = true
		j++
		for j < n && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	}
	if j < n && (s[j] == 'e' || s[j] == 'E') {
		k := j + 1
		if k < n && (s[k] == '+' || s[k] == '-') {
			k++
		}
		if k < n && s[k] >= '0' && s[k] <= '9' {
			isFloat = true
			j = k
			for j < n && s[j] >= '0' && s[j] <= '9' {
				j++
			}
		}
	}
	if j < n && (s[j] == 'f' || s[j] == 'F') {
		isFloat = true
		j++
	}
	for j < n && (s[j] == 'u' || s[j] == 'U' || s[j] == 'l' || s[j] == 'L') {
		j++
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: s[:j], Line: line, Col: col}, j, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// StripComments removes // line comments and /* */ block comments,
// replacing them with spaces (newlines inside block comments are kept so
// line numbers survive). Used by the preprocessed-mode blacklist scanner
// and keyword grading, which must not match text inside comments (§III-D).
func StripComments(src string) string {
	var out strings.Builder
	out.Grow(len(src))
	i, n := 0, len(src)
	for i < n {
		switch {
		case src[i] == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case src[i] == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					out.WriteByte('\n')
				}
				i++
			}
			if i+1 < n {
				i += 2
			} else {
				i = n
			}
			out.WriteByte(' ')
		case src[i] == '"':
			out.WriteByte(src[i])
			i++
			for i < n && src[i] != '"' {
				if src[i] == '\\' && i+1 < n {
					out.WriteByte(src[i])
					i++
				}
				out.WriteByte(src[i])
				i++
			}
			if i < n {
				out.WriteByte('"')
				i++
			}
		default:
			out.WriteByte(src[i])
			i++
		}
	}
	return out.String()
}

// Preprocess implements the tiny subset of the C preprocessor the labs
// need: it strips #include lines, expands object-like #define NAME VALUE
// macros (no function-like macros), honours #if 0 / #endif blocks used to
// disable code, and removes comments. It returns the preprocessed source;
// the sandbox blacklist can be run before (raw mode) or after
// (preprocessed mode) this pass — the paper notes that scanning the raw
// text rejects blacklisted identifiers inside comments, which preprocessed
// scanning avoids.
func Preprocess(src string) (string, error) {
	macros := map[string]string{}
	var out strings.Builder
	skipDepth := 0
	for ln, rawLine := range strings.Split(src, "\n") {
		line := strings.TrimSpace(rawLine)
		switch {
		case strings.HasPrefix(line, "#if"):
			cond := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, "#ifdef"), "#if"))
			if skipDepth > 0 || cond == "0" {
				skipDepth++
			} else if strings.HasPrefix(line, "#ifdef") {
				if _, ok := macros[cond]; !ok {
					skipDepth++
				}
			}
			out.WriteByte('\n')
		case strings.HasPrefix(line, "#endif"):
			if skipDepth > 0 {
				skipDepth--
			}
			out.WriteByte('\n')
		case strings.HasPrefix(line, "#else"):
			// #else of an active #if 0 enables; of an active block disables.
			if skipDepth == 1 {
				skipDepth = 0
			} else if skipDepth == 0 {
				skipDepth = 1
			}
			out.WriteByte('\n')
		case skipDepth > 0:
			out.WriteByte('\n')
		case strings.HasPrefix(line, "#define"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#define"))
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) == 0 || parts[0] == "" {
				return "", &CompileError{Line: ln + 1, Col: 1, Msg: "malformed #define"}
			}
			if strings.Contains(parts[0], "(") {
				return "", &CompileError{Line: ln + 1, Col: 1, Msg: "function-like macros are not supported"}
			}
			val := ""
			if len(parts) == 2 {
				val = strings.TrimSpace(parts[1])
			}
			macros[parts[0]] = val
			out.WriteByte('\n')
		case strings.HasPrefix(line, "#include"), strings.HasPrefix(line, "#pragma"),
			strings.HasPrefix(line, "#undef"):
			out.WriteByte('\n')
		default:
			out.WriteString(expandMacros(rawLine, macros))
			out.WriteByte('\n')
		}
	}
	return out.String(), nil
}

// expandMacros substitutes object-like macros at identifier boundaries,
// one pass (no recursive expansion; course labs only use simple constants
// like #define TILE_WIDTH 16).
func expandMacros(line string, macros map[string]string) string {
	if len(macros) == 0 {
		return line
	}
	var out strings.Builder
	i := 0
	for i < len(line) {
		c := line[i]
		if unicode.IsLetter(rune(c)) || c == '_' {
			j := i
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			word := line[i:j]
			if val, ok := macros[word]; ok {
				out.WriteString(val)
			} else {
				out.WriteString(word)
			}
			i = j
		} else {
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}
