package minicuda

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src, DialectCUDA)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func compileErr(t *testing.T, src string, wantSubstr string) {
	t.Helper()
	_, err := Compile(src, DialectCUDA)
	if err == nil {
		t.Fatalf("Compile succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error = %q, want substring %q", err, wantSubstr)
	}
}

const vecAddSrc = `
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) out[i] = in1[i] + in2[i];
}
`

func TestCompileVecAdd(t *testing.T) {
	p := mustCompile(t, vecAddSrc)
	if p.Kernel("vecAdd") == nil {
		t.Fatal("kernel vecAdd not found")
	}
	if got := p.Kernels(); len(got) != 1 || got[0] != "vecAdd" {
		t.Errorf("Kernels() = %v", got)
	}
}

func TestCompileSharedLayout(t *testing.T) {
	p := mustCompile(t, `
#define TILE 16
__global__ void k(float *a) {
  __shared__ float tileA[TILE][TILE];
  __shared__ float tileB[TILE][TILE];
  tileA[threadIdx.y][threadIdx.x] = a[0];
  tileB[threadIdx.y][threadIdx.x] = tileA[0][0];
  __syncthreads();
  a[0] = tileB[threadIdx.y][threadIdx.x];
}
`)
	fn := p.Kernel("k")
	if fn.SharedUse != 2*16*16*4 {
		t.Errorf("SharedUse = %d, want %d", fn.SharedUse, 2*16*16*4)
	}
}

func TestCompileConstantLayout(t *testing.T) {
	p := mustCompile(t, `
__constant__ float mask[5][5];
__global__ void k(float *a) { a[0] = mask[1][2]; }
`)
	if p.ConstSize() != 100 {
		t.Errorf("ConstSize = %d, want 100", p.ConstSize())
	}
	off, ok := p.ConstOffset("mask")
	if !ok || off != 0 {
		t.Errorf("ConstOffset = %d, %v", off, ok)
	}
}

func TestCompileDeviceFunction(t *testing.T) {
	p := mustCompile(t, `
__device__ float square(float x) { return x * x; }
__global__ void k(float *a, int n) {
  int i = threadIdx.x;
  if (i < n) a[i] = square(a[i]);
}
`)
	if p.Kernel("square") != nil {
		t.Error("device function listed as kernel")
	}
}

// --- Diagnostics ------------------------------------------------------------

func TestErrNoKernel(t *testing.T) {
	compileErr(t, `__device__ int f(int x) { return x; }`, "no __global__ kernel")
}

func TestErrUndeclared(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { a[0] = bogus; }`, "undeclared identifier")
}

func TestErrRedeclared(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { int x; float x; }`, "redeclaration")
}

func TestErrKernelReturnsValue(t *testing.T) {
	compileErr(t, `__global__ int k(float *a) { return 1; }`, "must return void")
}

func TestErrCallKernelFromDevice(t *testing.T) {
	compileErr(t, `
__global__ void inner(float *a) { a[0] = 1; }
__global__ void outer(float *a) { inner(a); }
`, "cannot be called from device code")
}

func TestErrBreakOutsideLoop(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { break; }`, "break outside")
}

func TestErrWrongArgCount(t *testing.T) {
	compileErr(t, `
__device__ int f(int a, int b) { return a + b; }
__global__ void k(int *o) { o[0] = f(1); }
`, "expects 2 arguments")
}

func TestErrAssignToArray(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { __shared__ float s[4]; s = a; }`, "not assignable")
}

func TestErrSubscriptNonPointer(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { int x; a[0] = x[1]; }`, "not a pointer or array")
}

func TestErrModOnFloat(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { a[0] = a[1] % a[2]; }`, "must be integers")
}

func TestErrCUDABuiltinInName(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { a[0] = nonexistent(1); }`, "undeclared function")
}

func TestErrBareDim3(t *testing.T) {
	compileErr(t, `__global__ void k(int *a) { a[0] = threadIdx; }`, ".x/.y/.z")
}

func TestErrSyntax(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { if a[0] {} }`, `expected "("`)
}

func TestErrSwitchUnsupported(t *testing.T) {
	compileErr(t, `__global__ void k(int *a) { switch (a[0]) {} }`, "not supported")
}

func TestErrAggregateInit(t *testing.T) {
	compileErr(t, `__global__ void k(int *a) { int v[2] = {1, 2}; }`, "aggregate initializers")
}

func TestErrOpenCLBuiltinInCUDA(t *testing.T) {
	compileErr(t, `__global__ void k(float *a) { int i = get_global_id(0); a[i] = 0; }`,
		"OpenCL builtin")
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Compile("__global__ void k(float *a) {\n  a[0] = bogus;\n}", DialectCUDA)
	ce, ok := err.(*CompileError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.Line != 2 {
		t.Errorf("error line = %d, want 2", ce.Line)
	}
}

func TestOpenCLKernel(t *testing.T) {
	src := `
__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
`
	p, err := Compile(src, DialectOpenCL)
	if err != nil {
		t.Fatalf("OpenCL compile: %v", err)
	}
	if p.Kernel("vadd") == nil {
		t.Fatal("kernel vadd not found")
	}
	// The same source must NOT compile as CUDA.
	if _, err := Compile(src, DialectCUDA); err == nil {
		t.Error("OpenCL source compiled under CUDA dialect")
	}
}
