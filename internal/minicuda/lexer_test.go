package minicuda

import (
	"strings"
	"testing"
)

func TestLexBasic(t *testing.T) {
	toks, err := Lex("__global__ void vecAdd(float* a, int n) { a[0] = 1.5f; }")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if kinds[0] != TokKeyword || texts[0] != "__global__" {
		t.Errorf("tok0 = %v %q", kinds[0], texts[0])
	}
	want := []string{"__global__", "void", "vecAdd", "(", "float", "*", "a", ",",
		"int", "n", ")", "{", "a", "[", "0", "]", "=", "1.5f", ";", "}", ""}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), texts)
	}
	for i, w := range want[:len(want)-1] {
		if texts[i] != w {
			t.Errorf("tok %d = %q, want %q", i, texts[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("int a; // line comment\n/* block\ncomment */ int b;")
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			idents = append(idents, tk.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "a" || idents[1] != "b" {
		t.Errorf("idents = %v", idents)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("int a; /* oops"); err == nil {
		t.Error("unterminated comment not detected")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
	}{
		{"42", TokIntLit},
		{"0x1F", TokIntLit},
		{"42u", TokIntLit},
		{"1.5", TokFloatLit},
		{"1.5f", TokFloatLit},
		{"2f", TokFloatLit},
		{"1e10", TokFloatLit},
		{"2.5e-3f", TokFloatLit},
		{".5", TokFloatLit},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("%q: text = %q", c.src, toks[0].Text)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int a;\n  float b;")
	if err != nil {
		t.Fatal(err)
	}
	// "float" is on line 2 col 3.
	for _, tk := range toks {
		if tk.Text == "float" {
			if tk.Line != 2 || tk.Col != 3 {
				t.Errorf("float at %d:%d, want 2:3", tk.Line, tk.Col)
			}
			return
		}
	}
	t.Fatal("float token not found")
}

func TestLexMultiCharOps(t *testing.T) {
	toks, err := Lex("a <<= b >> c != d && e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<<=", ">>", "!=", "&&"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("int a = $;"); err == nil {
		t.Error("expected error on '$'")
	}
}

func TestPreprocessDefine(t *testing.T) {
	out, err := Preprocess("#define TILE_WIDTH 16\nint x = TILE_WIDTH * TILE_WIDTH;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "16 * 16") {
		t.Errorf("macro not expanded: %q", out)
	}
}

func TestPreprocessDefineDoesNotTouchSubstrings(t *testing.T) {
	out, err := Preprocess("#define N 4\nint NN = N; int xN = 2;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NN = 4") || !strings.Contains(out, "xN = 2") {
		t.Errorf("identifier-boundary expansion broken: %q", out)
	}
}

func TestPreprocessIfZero(t *testing.T) {
	src := "int a;\n#if 0\nint garbage $$$;\n#endif\nint b;"
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "garbage") {
		t.Errorf("#if 0 block not removed: %q", out)
	}
	if !strings.Contains(out, "int b;") {
		t.Errorf("code after #endif missing: %q", out)
	}
}

func TestPreprocessIfElse(t *testing.T) {
	src := "#if 0\nint dead;\n#else\nint live;\n#endif"
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "dead") || !strings.Contains(out, "live") {
		t.Errorf("#else handling wrong: %q", out)
	}
}

func TestPreprocessIncludeStripped(t *testing.T) {
	out, err := Preprocess("#include <wb.h>\nint a;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "wb.h") {
		t.Errorf("#include not stripped: %q", out)
	}
}

func TestPreprocessFunctionMacroRejected(t *testing.T) {
	if _, err := Preprocess("#define SQR(x) ((x)*(x))\n"); err == nil {
		t.Error("function-like macro accepted")
	}
}

func TestPreprocessLineCountPreserved(t *testing.T) {
	src := "#define A 1\nint x = A;\nint y;"
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Count(out, "\n"), strings.Count(src, "\n")+1; got != want {
		t.Errorf("line count changed: %d vs %d", got, want)
	}
}
