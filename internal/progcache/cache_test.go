package progcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
)

func kernelSrc(tag int) string {
	return fmt.Sprintf(`__global__ void k%d(float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) out[i] = %d.0f;
}`, tag, tag)
}

func TestCompileHitAndMiss(t *testing.T) {
	c := New(8, nil)
	src := kernelSrc(1)

	p1, st, err := c.CompileStatus(src, minicuda.DialectCUDA)
	if err != nil || st != Miss {
		t.Fatalf("first compile: status=%v err=%v", st, err)
	}
	p2, st, err := c.CompileStatus(src, minicuda.DialectCUDA)
	if err != nil || st != Hit {
		t.Fatalf("second compile: status=%v err=%v", st, err)
	}
	if p1 != p2 {
		t.Error("hit did not return the cached program pointer")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Compiles != 1 || s.Size != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCompileErrorCached(t *testing.T) {
	c := New(8, nil)
	var calls atomic.Int64
	c.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		calls.Add(1)
		return minicuda.Compile(src, d)
	})
	broken := "__global__ void k(float *out int len) {}" // missing comma
	if _, err := c.Compile(broken, minicuda.DialectCUDA); err == nil {
		t.Fatal("broken source compiled")
	}
	if _, err := c.Compile(broken, minicuda.DialectCUDA); err == nil {
		t.Fatal("broken source compiled on the second try")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compile executed %d times, want 1 (errors are cached)", n)
	}
}

func TestDialectDistinguished(t *testing.T) {
	src := kernelSrc(2)
	if Key(src, minicuda.DialectCUDA) == Key(src, minicuda.DialectOpenCL) {
		t.Error("identical keys for different dialects")
	}
	if Key(src, minicuda.DialectCUDA) != Key(src, minicuda.DialectCUDA) {
		t.Error("key not deterministic")
	}
}

func TestLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(2, reg)
	a, b, d := kernelSrc(10), kernelSrc(11), kernelSrc(12)

	mustCompile := func(src string) {
		t.Helper()
		if _, err := c.Compile(src, minicuda.DialectCUDA); err != nil {
			t.Fatal(err)
		}
	}
	mustCompile(a)
	mustCompile(b)
	mustCompile(a) // touch a: b becomes least recently used
	mustCompile(d) // evicts b

	if _, st, _ := c.CompileStatus(a, minicuda.DialectCUDA); st != Hit {
		t.Errorf("a evicted despite being recently used (status %v)", st)
	}
	if _, st, _ := c.CompileStatus(b, minicuda.DialectCUDA); st != Miss {
		t.Errorf("b not evicted (status %v)", st)
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Size != 2 { // b evicted by d, then a or d evicted by b's recompile
		t.Errorf("stats = %+v", s)
	}
	if got := reg.Counter("progcache_evictions"); got != 2 {
		t.Errorf("metrics evictions = %g", got)
	}
	if got := reg.Gauge("progcache_size"); got != 2 {
		t.Errorf("metrics size gauge = %g", got)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(8, nil)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	c.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		calls.Add(1)
		close(started)
		<-release
		return minicuda.Compile(src, d)
	})

	src := kernelSrc(3)
	const waiters = 7
	var wg sync.WaitGroup
	leaderDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Compile(src, minicuda.DialectCUDA)
		leaderDone <- err
	}()
	<-started // the leader is inside the compile, holding the flight open

	statuses := make(chan Status, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := c.CompileStatus(src, minicuda.DialectCUDA)
			if err != nil {
				t.Errorf("coalesced compile: %v", err)
			}
			statuses <- st
		}()
	}
	// Wait for every waiter to register as coalesced before releasing.
	deadline := time.After(5 * time.Second)
	for c.Stats().Coalesced < waiters {
		select {
		case <-deadline:
			t.Fatalf("waiters did not coalesce: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if err := <-leaderDone; err != nil {
		t.Fatalf("leader compile: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compile executed %d times, want 1", n)
	}
	for i := 0; i < waiters; i++ {
		if st := <-statuses; st != Coalesced {
			t.Errorf("waiter status = %v, want Coalesced", st)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters || s.Compiles != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConcurrentMixedSources(t *testing.T) {
	c := New(64, nil)
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Alternate between one shared source and a per-goroutine one.
				src := kernelSrc(0)
				if i%2 == 1 {
					src = kernelSrc(100 + g)
				}
				if _, err := c.Compile(src, minicuda.DialectCUDA); err != nil {
					t.Errorf("compile: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	// One shared source + one per goroutine = 9 distinct compiles, ever.
	if s.Compiles != goroutines+1 {
		t.Errorf("compiles = %d, want %d; stats %+v", s.Compiles, goroutines+1, s)
	}
	if total := s.Hits + s.Misses + s.Coalesced; total != goroutines*iters {
		t.Errorf("accounted accesses = %d, want %d", total, goroutines*iters)
	}
}

func TestArtifactStats(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(2, reg)
	src := kernelSrc(40)

	p, _, err := c.CompileStatus(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if want := int64(p.BytecodeBytes()); s.BytecodeBytes != want || want == 0 {
		t.Fatalf("BytecodeBytes = %d, want %d (nonzero)", s.BytecodeBytes, want)
	}
	if _, st, _ := c.CompileStatus(src, minicuda.DialectCUDA); st != Hit {
		t.Fatalf("status = %v, want Hit", st)
	}
	s = c.Stats()
	split := s.HitsBytecodeWarp + s.HitsBytecode + s.HitsAST
	if split != 1 || split != s.Hits {
		t.Fatalf("hit split %d+%d+%d does not cover %d hits",
			s.HitsBytecodeWarp, s.HitsBytecode, s.HitsAST, s.Hits)
	}
	switch p.ArtifactKind() {
	case "bytecode-warp":
		if s.HitsBytecodeWarp != 1 {
			t.Fatalf("stats = %+v, want the hit counted as bytecode-warp", s)
		}
		if reg.Counter("progcache_hits_bytecode_warp") != 1 {
			t.Fatalf("progcache_hits_bytecode_warp = %v, want 1",
				reg.Counter("progcache_hits_bytecode_warp"))
		}
	case "bytecode":
		if s.HitsBytecode != 1 {
			t.Fatalf("stats = %+v, want the hit counted as bytecode", s)
		}
	}

	// Evicting an entry releases its artifact bytes.
	if _, err := c.Compile(kernelSrc(41), minicuda.DialectCUDA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(kernelSrc(42), minicuda.DialectCUDA); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	var total int64
	c.mu.Lock()
	for _, e := range c.entries {
		total += e.bcBytes
	}
	c.mu.Unlock()
	if s.BytecodeBytes != total {
		t.Fatalf("BytecodeBytes = %d, want %d (sum over live entries)", s.BytecodeBytes, total)
	}
}
