package progcache

import (
	"fmt"
	"testing"

	"webgpu/internal/castore"
	"webgpu/internal/faultinject"
	"webgpu/internal/minicuda"
)

const storeTestSrc = `__global__ void vadd(int *out, int *a, int *b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { out[i] = a[i] + b[i]; }
}`

func variantSrc(i int) string {
	return fmt.Sprintf("// variant %d\n%s", i, storeTestSrc)
}

func openStore(t *testing.T, dir string) *castore.Store {
	t.Helper()
	s, err := castore.Open(dir, castore.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReadThroughSkipsCompile: a second cache over the same store
// directory serves programs from disk without invoking the compiler.
func TestReadThroughSkipsCompile(t *testing.T) {
	dir := t.TempDir()
	c1 := New(16, nil)
	c1.SetStore(openStore(t, dir))
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c1.Compile(variantSrc(i), minicuda.DialectCUDA); err != nil {
			t.Fatal(err)
		}
	}
	if st := c1.Stats(); st.Compiles != n || st.DiskHits != 0 {
		t.Fatalf("first cache stats = %+v", st)
	}

	c2 := New(16, nil)
	c2.SetStore(openStore(t, dir))
	compiles := 0
	c2.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		compiles++
		return minicuda.Compile(src, d)
	})
	for i := 0; i < n; i++ {
		prog, status, err := c2.CompileStatus(variantSrc(i), minicuda.DialectCUDA)
		if err != nil {
			t.Fatal(err)
		}
		if status != Miss {
			t.Fatalf("variant %d: status = %v, want Miss (memory miss, disk hit)", i, status)
		}
		if got := prog.Kernels(); len(got) != 1 || got[0] != "vadd" {
			t.Fatalf("decoded kernels = %v", got)
		}
	}
	if compiles != 0 {
		t.Fatalf("restart recompiled %d sources with warm store", compiles)
	}
	st := c2.Stats()
	if st.DiskHits != n || st.Compiles != 0 || st.Misses != n {
		t.Fatalf("second cache stats = %+v", st)
	}
	// Now cached in memory: a third request is a plain hit.
	if _, status, _ := c2.CompileStatus(variantSrc(0), minicuda.DialectCUDA); status != Hit {
		t.Fatalf("post-read-through status = %v, want Hit", status)
	}
}

// TestCompileErrorsNotPersisted: failed compiles stay in memory only, so
// a restart retries them (a deterministic failure recompiles cheaply and
// a poisoned shared-disk error can't outlive its writer).
func TestCompileErrorsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	c1 := New(16, nil)
	store := openStore(t, dir)
	c1.SetStore(store)
	bad := "__global__ void broken(int *p) { p[0] = ; }"
	if _, err := c1.Compile(bad, minicuda.DialectCUDA); err == nil {
		t.Fatal("broken source compiled")
	}
	if st := store.Stats(); st.Puts != 0 {
		t.Fatalf("error artifact persisted: %+v", st)
	}
}

// TestDiagnosticsReadThrough: kernelcheck output persists as JSON and a
// restarted cache serves it without re-analysis.
func TestDiagnosticsReadThrough(t *testing.T) {
	dir := t.TempDir()
	// A kernel kernelcheck has something to say about: global access
	// indexed so adjacent threads stride, plus an unguarded bound.
	src := `__global__ void strided(int *out, int n) {
  int i = threadIdx.x;
  out[i * 32] = i;
}`
	c1 := New(16, nil)
	c1.SetStore(openStore(t, dir))
	want, err := c1.Diagnostics(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Analyzes != 1 || st.DiskDiagHits != 0 {
		t.Fatalf("first cache stats = %+v", st)
	}

	c2 := New(16, nil)
	c2.SetStore(openStore(t, dir))
	got, err := c2.Diagnostics(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Analyzes != 0 || st.DiskDiagHits != 1 {
		t.Fatalf("second cache stats = %+v (want disk diag hit, no analyze)", st)
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics diverge: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diagnostic %d diverges:\n%+v\n%+v", i, got[i], want[i])
		}
	}
}

// TestWarmStartPreload: a new cache eagerly loads the store's hottest
// entries and serves them as memory hits with zero compiles.
func TestWarmStartPreload(t *testing.T) {
	dir := t.TempDir()
	c1 := New(16, nil)
	c1.SetStore(openStore(t, dir))
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := c1.Compile(variantSrc(i), minicuda.DialectCUDA); err != nil {
			t.Fatal(err)
		}
	}
	// Heat variants 0 and 1 (every access after boot re-reads nothing from
	// disk, so heat the store directly through a second cache's misses).
	c1b := New(16, nil)
	c1b.SetStore(openStore(t, dir))
	for i := 0; i < 4; i++ {
		if _, err := c1b.Compile(variantSrc(0), minicuda.DialectCUDA); err != nil {
			t.Fatal(err)
		}
	}

	c2 := New(16, nil)
	c2.SetStore(openStore(t, dir))
	c2.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		t.Fatalf("preloaded cache compiled %q", src[:20])
		return nil, nil
	})
	loaded := c2.WarmStart(3)
	if loaded != 3 {
		t.Fatalf("warm start loaded %d, want 3", loaded)
	}
	st := c2.Stats()
	if st.Preloaded != 3 || st.Size != 3 {
		t.Fatalf("stats after warm start = %+v", st)
	}
	// The hottest variant is among the preloads and serves as a pure hit.
	if _, status, err := c2.CompileStatus(variantSrc(0), minicuda.DialectCUDA); err != nil || status != Hit {
		t.Fatalf("hottest after preload: status=%v err=%v", status, err)
	}
}

// TestWarmStartRespectsCapacity: preload never evicts, it stops.
func TestWarmStartRespectsCapacity(t *testing.T) {
	dir := t.TempDir()
	c1 := New(16, nil)
	c1.SetStore(openStore(t, dir))
	for i := 0; i < 8; i++ {
		if _, err := c1.Compile(variantSrc(i), minicuda.DialectCUDA); err != nil {
			t.Fatal(err)
		}
	}
	c2 := New(4, nil)
	c2.SetStore(openStore(t, dir))
	if loaded := c2.WarmStart(100); loaded != 4 {
		t.Fatalf("warm start into capacity-4 cache loaded %d", loaded)
	}
	if st := c2.Stats(); st.Evictions != 0 || st.Size != 4 {
		t.Fatalf("stats = %+v (preload must not evict)", st)
	}
}

// TestCorruptStoreEntryRecompiles: a castore-level corruption (caught by
// hash verification) degrades to one recompile; the rewritten artifact
// then serves the next restart.
func TestCorruptStoreEntryRecompiles(t *testing.T) {
	dir := t.TempDir()
	c1 := New(16, nil)
	store1 := openStore(t, dir)
	c1.SetStore(store1)
	if _, err := c1.Compile(variantSrc(0), minicuda.DialectCUDA); err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact on disk via a read fault — simpler than path
	// math here; the castore tests cover literal byte corruption. A read
	// fault means "disk said no": the cache must compile.
	faults := faultinject.New(7)
	faults.Enable(faultinject.PointCAStoreRead, faultinject.Fault{})
	store2, err := castore.Open(dir, castore.Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c2 := New(16, nil)
	c2.SetStore(store2)
	prog, status, err := c2.CompileStatus(variantSrc(0), minicuda.DialectCUDA)
	if err != nil || prog == nil {
		t.Fatalf("compile under read faults: %v", err)
	}
	if status != Miss {
		t.Fatalf("status = %v", status)
	}
	if st := c2.Stats(); st.Compiles != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v (read fault must mean compile)", st)
	}
}

// TestDecodedProgramRunsIdentically: the program a restarted cache decodes
// from disk launches with the same results as the original compile.
func TestDecodedProgramRunsIdentically(t *testing.T) {
	dir := t.TempDir()
	src := `__global__ void sq(int *iout, float *fout, int n) {
  int i = threadIdx.x;
  if (i < n) { iout[i] = i * i; fout[0] = 2.5f; }
}`
	c1 := New(16, nil)
	c1.SetStore(openStore(t, dir))
	orig, err := c1.Compile(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(16, nil)
	c2.SetStore(openStore(t, dir))
	dec, err := c2.Compile(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats().DiskHits != 1 {
		t.Fatalf("expected disk hit, stats = %+v", c2.Stats())
	}
	if orig.InstructionCount() != dec.InstructionCount() ||
		orig.ConstSize() != dec.ConstSize() {
		t.Fatalf("decoded program structure diverges")
	}
}
