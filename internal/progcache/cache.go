// Package progcache is a content-addressed cache of compiled minicuda
// programs. The paper's deadline spikes (§VII) have thousands of
// near-identical submissions arriving in the final hours — the same lab's
// sources are compiled over and over. Keying compiled programs by a hash
// of (dialect, source) turns those repeats into cache hits, and
// singleflight deduplication makes concurrent jobs carrying identical
// source trigger exactly one compile: every other job waits for the
// in-flight result instead of redoing the work.
//
// Compiled programs are immutable after semantic analysis, so a cached
// *minicuda.Program is safe to share across concurrent kernel launches;
// compile *errors* are cached too (compilation is deterministic, so a
// source that failed once fails identically forever).
package progcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"

	"webgpu/internal/castore"
	"webgpu/internal/kernelcheck"
	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
)

// Status reports how a Compile call was satisfied.
type Status int

// Compile statuses.
const (
	Miss      Status = iota // compiled by this call
	Hit                     // served from the cache
	Coalesced               // waited on another goroutine's in-flight compile
)

func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// DefaultCapacity bounds the process-wide Default cache. A compiled lab
// submission is a few kilobytes of AST, so even thousands of distinct
// sources stay cheap; the bound exists so an adversarial stream of unique
// sources cannot grow memory without limit.
const DefaultCapacity = 4096

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits             int64 // served from the cache
	HitsAST          int64 // hits on programs executed by the tree walker
	HitsBytecode     int64 // hits on programs carrying a bytecode artifact
	HitsBytecodeWarp int64 // hits on programs carrying a fused warp-stream artifact
	HitsDiagnostics  int64 // diagnostics served without re-analysis
	Misses           int64 // absent from memory (disk or compile filled it)
	Coalesced        int64 // waited on a concurrent identical compile
	Evictions        int64 // entries dropped by the LRU bound
	Compiles         int64 // underlying compile executions (== Misses - DiskHits)
	Analyzes         int64 // kernelcheck runs (first request per entry)
	DiskHits         int64 // programs decoded from the durable store instead of compiled
	DiskDiagHits     int64 // diagnostics decoded from the durable store instead of analyzed
	Preloaded        int64 // programs eagerly warm-started from the store at boot
	Size             int   // entries currently cached
	BytecodeBytes    int64 // lowered-bytecode bytes held by cached entries
}

// ProgBlob is the castore blob name for the serialized program: the
// three program kinds are one stream (the decoded program carries all
// of them).
const ProgBlob = "prog"

// DiagBlob is the castore blob name diagnostics persist under as JSON.
// It embeds the analyzer's ruleset version, so bumping
// kernelcheck.RulesetVersion orphans stale persisted diagnostics
// instead of serving findings an older ruleset produced.
var DiagBlob = "diag-" + kernelcheck.RulesetVersion

// artifactSpec registers one cacheable artifact kind: the name used for
// metrics and dashboards, and the castore blob it persists into.
type artifactSpec struct {
	kind string
	blob string
}

// artifactSpecs is the single registration table every kind-derived
// surface comes from — ArtifactKinds, hitMetric, and the store blob
// mapping. Adding a persisted artifact kind here is the whole
// registration; nothing else can silently drift.
var artifactSpecs = []artifactSpec{
	{kind: "ast", blob: ProgBlob},
	{kind: "bytecode", blob: ProgBlob},
	{kind: "bytecode-warp", blob: ProgBlob},
	{kind: "diagnostics", blob: DiagBlob},
}

// hitMetrics maps each registered kind to its counter series name; kinds
// may contain hyphens ("bytecode-warp") but metric names stay snake_case.
var hitMetrics = func() map[string]string {
	m := make(map[string]string, len(artifactSpecs))
	for _, s := range artifactSpecs {
		m[s.kind] = "progcache_hits_" + strings.ReplaceAll(s.kind, "-", "_")
	}
	return m
}()

// ArtifactKinds enumerates every per-kind hit counter the cache can
// emit, so dashboards and metric registration see the full set up front
// instead of series appearing lazily on first hit.
func ArtifactKinds() []string {
	kinds := make([]string, len(artifactSpecs))
	for i, s := range artifactSpecs {
		kinds[i] = s.kind
	}
	return kinds
}

// hitMetric maps an artifact kind to its hit-counter series name.
func hitMetric(kind string) string { return hitMetrics[kind] }

type entry struct {
	key     string
	prog    *minicuda.Program
	err     error
	elem    *list.Element
	bcBytes int64 // bytecode artifact size, counted into Stats.BytecodeBytes

	// Diagnostics are a derived artifact, computed on first request and
	// then served from the entry like the program itself. diagsDone flips
	// inside the Once body so CachedDiagnostics can answer without
	// racing a concurrent fill.
	diagsOnce sync.Once
	diagsDone atomic.Bool
	diags     []kernelcheck.Diagnostic
}

// flight is one in-progress compile that concurrent callers wait on.
type flight struct {
	done chan struct{}
	prog *minicuda.Program
	err  error
}

// CompileFunc is the underlying compiler the cache fills itself from.
type CompileFunc func(src string, dialect minicuda.Dialect) (*minicuda.Program, error)

// Cache is a size-bounded, LRU, content-addressed program cache with
// singleflight deduplication. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	compile  CompileFunc
	reg      *metrics.Registry
	store    *castore.Store // optional durable tier; nil = memory only
	stats    Stats
}

// Default is the process-wide cache shared by callers that do not manage
// their own (the labs package, worker nodes without an explicit cache).
var Default = New(DefaultCapacity, nil)

// New creates a cache holding at most capacity compiled programs
// (capacity <= 0 means unbounded). When reg is non-nil the cache mirrors
// its counters into it under progcache_* names.
func New(capacity int, reg *metrics.Registry) *Cache {
	if reg != nil {
		// Register every artifact-kind series at zero immediately: a
		// dashboard scraping a fresh worker sees the complete set rather
		// than series popping into existence at their first hit.
		for _, kind := range ArtifactKinds() {
			reg.Inc(hitMetric(kind), 0)
		}
	}
	return &Cache{
		capacity: capacity,
		entries:  map[string]*entry{},
		lru:      list.New(),
		inflight: map[string]*flight{},
		compile:  minicuda.Compile,
		reg:      reg,
	}
}

// SetCompileFunc overrides the underlying compiler (tests use this to
// inject slow or instrumented compiles). Not safe to call concurrently
// with Compile.
func (c *Cache) SetCompileFunc(fn CompileFunc) {
	if fn == nil {
		fn = minicuda.Compile
	}
	c.compile = fn
}

// SetStore attaches a durable content-addressed store as the tier below
// the in-memory LRU: misses consult it before compiling (read-through)
// and successful compiles persist into it (write-through). A nil store
// detaches. Safe to call concurrently, though the usual shape is
// attach-once at boot.
func (c *Cache) SetStore(s *castore.Store) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Store returns the attached durable store, or nil.
func (c *Cache) Store() *castore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Key returns the content address of a (source, dialect) pair: the hex
// SHA-256 of the dialect tag and the raw source text.
func Key(src string, dialect minicuda.Dialect) string {
	h := sha256.New()
	h.Write([]byte{byte(dialect), 0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// Compile returns the compiled program for the source, compiling at most
// once per distinct (source, dialect) while the entry stays cached.
func (c *Cache) Compile(src string, dialect minicuda.Dialect) (*minicuda.Program, error) {
	prog, _, err := c.CompileStatus(src, dialect)
	return prog, err
}

// CompileStatus is Compile plus how the call was satisfied.
func (c *Cache) CompileStatus(src string, dialect minicuda.Dialect) (*minicuda.Program, Status, error) {
	key := Key(src, dialect)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		c.inc("progcache_hits")
		// Split the hit by the executable artifact the program runs on, so
		// the rollout of each engine tier (tree walker -> register VM ->
		// warp engine) is observable per worker.
		kind := "ast"
		if e.prog != nil {
			kind = e.prog.ArtifactKind()
		}
		switch kind {
		case "bytecode-warp":
			c.stats.HitsBytecodeWarp++
			c.inc(hitMetric(kind))
		case "bytecode":
			c.stats.HitsBytecode++
			c.inc(hitMetric(kind))
		default:
			c.stats.HitsAST++
			c.inc(hitMetric("ast"))
		}
		c.mu.Unlock()
		return e.prog, Hit, e.err
	}
	if f, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.inc("progcache_coalesced")
		c.mu.Unlock()
		<-f.done
		return f.prog, Coalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Misses++
	c.inc("progcache_misses")
	store := c.store
	c.mu.Unlock()

	// Read-through: a memory miss consults the durable store before
	// compiling. A decode failure (codec version skew, say) discards the
	// stale entry and falls through to a fresh compile; the store itself
	// quarantines hash-mismatched files and reports them as misses, so a
	// corrupt artifact can only ever cost a recompile.
	var prog *minicuda.Program
	var err error
	fromDisk := false
	if store != nil {
		if data, ok := store.Get(key, ProgBlob); ok {
			if p, derr := minicuda.DecodeProgram(data); derr == nil {
				prog, fromDisk = p, true
			} else {
				store.Discard(key, ProgBlob)
			}
		}
	}
	if !fromDisk {
		prog, err = c.compile(src, dialect)
		// Write-through, best effort: only successful compiles persist
		// (errors are deterministic and cheap to rediscover, and a
		// poisoned error entry on shared disk would outlive the process
		// that wrote it).
		if err == nil && prog != nil && store != nil {
			if data, eerr := minicuda.EncodeProgram(prog); eerr == nil {
				_ = store.Put(key, ProgBlob, data)
			}
		}
	}

	c.mu.Lock()
	if fromDisk {
		c.stats.DiskHits++
		c.inc("progcache_disk_hits")
	} else {
		c.stats.Compiles++
	}
	delete(c.inflight, key)
	e := &entry{key: key, prog: prog, err: err}
	if prog != nil {
		e.bcBytes = int64(prog.BytecodeBytes())
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.stats.BytecodeBytes += e.bcBytes
	for c.capacity > 0 && c.lru.Len() > c.capacity {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.stats.BytecodeBytes -= old.bcBytes
		c.stats.Evictions++
		c.inc("progcache_evictions")
	}
	c.stats.Size = len(c.entries)
	if c.reg != nil {
		c.reg.Set("progcache_size", float64(len(c.entries)))
		c.reg.Set("progcache_bytecode_bytes", float64(c.stats.BytecodeBytes))
	}
	c.mu.Unlock()

	f.prog, f.err = prog, err
	close(f.done)
	return prog, Miss, err
}

// Diagnostics returns the kernelcheck analysis for the source,
// compiling it first if needed. The diagnostic slice is a derived
// artifact cached on the program's entry: analysis runs once per
// distinct (source, dialect) and every later call is a hit. The
// returned slice is shared — callers must not mutate it.
func (c *Cache) Diagnostics(src string, dialect minicuda.Dialect) ([]kernelcheck.Diagnostic, error) {
	// Entry-first lookup: a pipeline that just compiled this source must
	// not count a second cache hit (the worker's compile and analysis
	// stages would otherwise double every hit counter).
	key := Key(src, dialect)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		prog, _, err := c.CompileStatus(src, dialect)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		e = c.entries[key]
		c.mu.Unlock()
		if e == nil || e.prog != prog {
			// Evicted (or replaced) between compile and lookup: analyze
			// without caching. Rare — only under heavy LRU churn.
			c.mu.Lock()
			c.stats.Analyzes++
			c.mu.Unlock()
			return kernelcheck.Analyze(prog), nil
		}
	}
	if e.err != nil {
		return nil, e.err
	}

	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	analyzed, fromDisk := false, false
	e.diagsOnce.Do(func() {
		defer e.diagsDone.Store(true)
		// Read-through: diagnostics persist as JSON beside the program
		// artifact. An unparseable entry is discarded and re-analyzed.
		if store != nil {
			if data, ok := store.Get(key, DiagBlob); ok {
				var diags []kernelcheck.Diagnostic
				if json.Unmarshal(data, &diags) == nil {
					e.diags = diags
					fromDisk = true
					return
				}
				store.Discard(key, DiagBlob)
			}
		}
		analyzed = true
		e.diags = kernelcheck.Analyze(e.prog)
		if store != nil {
			if data, merr := json.Marshal(e.diags); merr == nil {
				_ = store.Put(key, DiagBlob, data)
			}
		}
	})
	c.mu.Lock()
	switch {
	case fromDisk:
		c.stats.DiskDiagHits++
		c.inc("progcache_disk_diag_hits")
	case analyzed:
		c.stats.Analyzes++
	default:
		c.stats.HitsDiagnostics++
		c.inc("progcache_hits_diagnostics")
	}
	c.mu.Unlock()
	return e.diags, nil
}

// CachedDiagnostics returns the already-computed diagnostics for the
// source if its entry is resident in memory with a finished analysis —
// no compile, no disk read, no analysis is triggered. Callers that
// maintain their own analysis engine (the devsession incremental loop)
// use this to skip work the shared cache already holds, and seed the
// cache through PutDiagnostics when it does not.
func (c *Cache) CachedDiagnostics(src string, dialect minicuda.Dialect) ([]kernelcheck.Diagnostic, bool) {
	key := Key(src, dialect)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil || e.err != nil || !e.diagsDone.Load() {
		return nil, false
	}
	c.mu.Lock()
	c.stats.HitsDiagnostics++
	c.inc("progcache_hits_diagnostics")
	c.mu.Unlock()
	return e.diags, true
}

// PutDiagnostics seeds the entry's diagnostics artifact with an
// externally computed result (the devsession incremental engine, whose
// output is byte-identical to Analyze by construction) and persists it
// to the durable store. A no-op if the entry is absent, failed to
// compile, or already carries diagnostics.
func (c *Cache) PutDiagnostics(src string, dialect minicuda.Dialect, diags []kernelcheck.Diagnostic) {
	key := Key(src, dialect)
	c.mu.Lock()
	e := c.entries[key]
	store := c.store
	c.mu.Unlock()
	if e == nil || e.err != nil {
		return
	}
	e.diagsOnce.Do(func() {
		defer e.diagsDone.Store(true)
		e.diags = diags
		if store != nil {
			if data, merr := json.Marshal(diags); merr == nil {
				_ = store.Put(key, DiagBlob, data)
			}
		}
	})
}

// WarmStart eagerly decodes up to n of the store's hottest program
// artifacts into the cache and returns how many loaded. Preloaded entries
// enter at the cold end of the LRU so live traffic always outranks them.
// Callers without a feel for n can pass DefaultCapacity; with no store
// attached WarmStart is a no-op. The remaining (or all) entries still
// warm lazily through the read-through miss path.
func (c *Cache) WarmStart(n int) int {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil || n <= 0 {
		return 0
	}
	loaded := 0
	for _, key := range store.HottestKeys(n) {
		c.mu.Lock()
		_, exists := c.entries[key]
		c.mu.Unlock()
		if exists {
			continue
		}
		data, ok := store.Get(key, ProgBlob)
		if !ok {
			continue
		}
		prog, err := minicuda.DecodeProgram(data)
		if err != nil {
			store.Discard(key, ProgBlob)
			continue
		}
		c.mu.Lock()
		if c.capacity > 0 && c.lru.Len() >= c.capacity {
			// Preloading must never evict live entries; a full cache
			// means the remaining hot set warms lazily instead.
			c.mu.Unlock()
			break
		}
		if _, exists := c.entries[key]; !exists {
			e := &entry{key: key, prog: prog, bcBytes: int64(prog.BytecodeBytes())}
			e.elem = c.lru.PushBack(e)
			c.entries[key] = e
			c.stats.BytecodeBytes += e.bcBytes
			c.stats.Preloaded++
			c.inc("progcache_preloaded")
			loaded++
			c.stats.Size = len(c.entries)
			if c.reg != nil {
				c.reg.Set("progcache_size", float64(len(c.entries)))
				c.reg.Set("progcache_bytecode_bytes", float64(c.stats.BytecodeBytes))
			}
		}
		c.mu.Unlock()
	}
	return loaded
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.entries)
	return s
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// inc mirrors a counter into the attached metrics registry. Called with
// c.mu held; the registry has its own lock and never calls back into the
// cache, so the nesting is safe.
func (c *Cache) inc(name string) {
	if c.reg != nil {
		c.reg.Inc(name, 1)
	}
}
