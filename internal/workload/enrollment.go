// Package workload models the student population that drove WebGPU: the
// enrollment and retention of the three Heterogeneous Parallel
// Programming Coursera offerings (Table I) and the hourly activity
// pattern of the 2015 offering (Figure 1), with its Wednesday spikes
// before the Thursday lab deadline and its decay from thousands of users
// per day at the start of the course to about 200 at the end. The models
// are calibrated to the paper's published numbers and drive the
// load-generation benchmarks.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// YearParams parameterizes one course offering's retention funnel: a
// fraction of registrants become active in week one, a constant weekly
// retention factor thins them over the course, and survivors complete.
// Certificates (proctored-quiz attendance) are a fraction of completers.
type YearParams struct {
	Year            int
	Registered      int
	Weeks           int
	InitialActive   float64 // fraction of registrants active in week 1
	WeeklyRetention float64
	CertificateRate float64 // fraction of completers who sat the proctored quiz
}

// YearResult is one simulated offering, the row format of Table I.
type YearResult struct {
	Year           int
	Registered     int
	Completions    int
	CompletionRate float64 // fraction
	Certificates   int
	WeeklyActive   []int // active students per week, week 1..Weeks
}

// PaperTableI is the published Table I data the calibration targets.
var PaperTableI = []YearResult{
	{Year: 2013, Registered: 36896, Completions: 2729, CompletionRate: 0.0740, Certificates: 0},
	{Year: 2014, Registered: 33818, Completions: 1061, CompletionRate: 0.0314, Certificates: 286},
	{Year: 2015, Registered: 35940, Completions: 1141, CompletionRate: 0.0315, Certificates: 442},
}

// CalibratedYears returns per-year funnel parameters whose expected
// completions match Table I. The funnel is
//
//	completions = registered × initialActive × retention^(weeks-1)
//
// with a 9-week course and 55% week-one activity (typical MOOC numbers);
// retention is solved per year from the published completion rate.
func CalibratedYears() []YearParams {
	const weeks = 9
	const initialActive = 0.55
	out := make([]YearParams, 0, len(PaperTableI))
	for _, row := range PaperTableI {
		target := float64(row.Completions) / float64(row.Registered)
		retention := math.Pow(target/initialActive, 1/float64(weeks-1))
		certRate := 0.0
		if row.Completions > 0 {
			certRate = float64(row.Certificates) / float64(row.Completions)
		}
		out = append(out, YearParams{
			Year:            row.Year,
			Registered:      row.Registered,
			Weeks:           weeks,
			InitialActive:   initialActive,
			WeeklyRetention: retention,
			CertificateRate: certRate,
		})
	}
	return out
}

// Expected computes the deterministic expectation of the funnel.
func (p YearParams) Expected() YearResult {
	res := YearResult{Year: p.Year, Registered: p.Registered}
	active := float64(p.Registered) * p.InitialActive
	for w := 1; w <= p.Weeks; w++ {
		res.WeeklyActive = append(res.WeeklyActive, int(math.Round(active)))
		if w < p.Weeks {
			active *= p.WeeklyRetention
		}
	}
	res.Completions = int(math.Round(active))
	res.CompletionRate = float64(res.Completions) / float64(res.Registered)
	res.Certificates = int(math.Round(float64(res.Completions) * p.CertificateRate))
	return res
}

// Simulate runs the funnel stochastically: each active student survives
// each week with probability WeeklyRetention.
func (p YearParams) Simulate(rng *rand.Rand) YearResult {
	res := YearResult{Year: p.Year, Registered: p.Registered}
	active := 0
	for i := 0; i < p.Registered; i++ {
		if rng.Float64() < p.InitialActive {
			active++
		}
	}
	for w := 1; w <= p.Weeks; w++ {
		res.WeeklyActive = append(res.WeeklyActive, active)
		if w == p.Weeks {
			break
		}
		survivors := 0
		for i := 0; i < active; i++ {
			if rng.Float64() < p.WeeklyRetention {
				survivors++
			}
		}
		active = survivors
	}
	res.Completions = active
	res.CompletionRate = float64(res.Completions) / float64(res.Registered)
	certs := 0
	for i := 0; i < res.Completions; i++ {
		if rng.Float64() < p.CertificateRate {
			certs++
		}
	}
	res.Certificates = certs
	return res
}

// FormatTableI renders results in the layout of the paper's Table I.
func FormatTableI(rows []YearResult) string {
	var sb strings.Builder
	sb.WriteString("Year  Registered Users  Completions  Completion Rate  Certificates Issued\n")
	for _, r := range rows {
		cert := "-"
		if r.Certificates > 0 {
			cert = fmt.Sprintf("%d", r.Certificates)
		}
		fmt.Fprintf(&sb, "%d  %16d  %11d  %14.2f%%  %19s\n",
			r.Year, r.Registered, r.Completions, 100*r.CompletionRate, cert)
	}
	return sb.String()
}
