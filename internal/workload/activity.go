package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Figure 1 model: "the number of active students per hour on WebGPU from
// February 8th 2015 to April 15th 2015. The number of active students
// varies from 112 on February 18th to 8 on April 9th ... Thursday was the
// lab deadline. A spike occurs every Wednesday as students rush to
// complete the lab."

// HourPoint is one sample of the active-students series.
type HourPoint struct {
	Time   time.Time
	Active int
}

// ActivityModel generates the hourly active-student series.
type ActivityModel struct {
	Start           time.Time
	End             time.Time
	Peak            float64      // maximum hourly active students (paper: 112)
	Trough          float64      // late-course minimum (paper: 8)
	DeadlineWeekday time.Weekday // Thursday in 2015
	Seed            int64
}

// Figure1Model returns the model calibrated to the 2015 offering.
func Figure1Model() ActivityModel {
	return ActivityModel{
		Start:           time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2015, 4, 15, 0, 0, 0, 0, time.UTC),
		Peak:            112,
		Trough:          8,
		DeadlineWeekday: time.Thursday,
		Seed:            2015,
	}
}

// shape computes the noiseless activity envelope at time t, normalized so
// its maximum over the course is ~1.
func (m ActivityModel) shape(t time.Time) float64 {
	total := m.End.Sub(m.Start).Hours()
	frac := t.Sub(m.Start).Hours() / total // 0..1 through the course

	// Enrollment decay (Table I): activity falls roughly exponentially as
	// students drop; calibrate so the envelope ends near Trough/Peak.
	decay := math.Exp(math.Log(m.Trough/m.Peak) * frac * 0.85)

	// Weekly deadline cycle: activity climbs through the week and spikes
	// the day before the deadline (Wednesday), collapsing after Thursday.
	// The first lab's deadline fell in week two (the course opened Feb 8),
	// so the spike ramps in over the first ~nine days — which is why the
	// paper's peak is Feb 18, the *second* Wednesday.
	spikeDay := (int(m.DeadlineWeekday) + 6) % 7 // the day before the deadline
	daysToSpike := float64((int(t.Weekday()) - spikeDay + 7) % 7)
	ramp := t.Sub(m.Start).Hours() / 24 / 9
	if ramp > 1 {
		ramp = 1
	}
	spikeStrength := 0.25 + 0.75*ramp
	weekly := 0.35 + 0.65*math.Exp(-daysToSpike*daysToSpike/3.0)*spikeStrength

	// Diurnal cycle: global student body flattens it, but a clear
	// day/night swing remains.
	hour := float64(t.Hour())
	diurnal := 0.65 + 0.35*math.Sin((hour-9)/24*2*math.Pi)

	return decay * weekly * diurnal
}

// HourlySeries generates the full series.
func (m ActivityModel) HourlySeries() []HourPoint {
	rng := rand.New(rand.NewSource(m.Seed))
	var out []HourPoint

	// Normalize the shape maximum to Peak.
	maxShape := 0.0
	for t := m.Start; t.Before(m.End); t = t.Add(time.Hour) {
		if s := m.shape(t); s > maxShape {
			maxShape = s
		}
	}
	for t := m.Start; t.Before(m.End); t = t.Add(time.Hour) {
		v := m.shape(t) / maxShape * m.Peak * 0.97
		v *= 1 + 0.05*rng.NormFloat64() // observation noise
		if v < 0 {
			v = 0
		}
		out = append(out, HourPoint{Time: t, Active: int(math.Round(v))})
	}
	return out
}

// SeriesStats summarizes a series the way the figure caption does.
type SeriesStats struct {
	Hours     int
	Max       int
	MaxAt     time.Time
	Min       int
	MinAt     time.Time
	Mean      float64
	ByWeekday [7]float64 // mean active by weekday
}

// Stats computes summary statistics of a series.
func Stats(series []HourPoint) SeriesStats {
	s := SeriesStats{Hours: len(series), Min: math.MaxInt32}
	var sum float64
	var wdSum [7]float64
	var wdN [7]int
	for _, p := range series {
		if p.Active > s.Max {
			s.Max, s.MaxAt = p.Active, p.Time
		}
		if p.Active < s.Min {
			s.Min, s.MinAt = p.Active, p.Time
		}
		sum += float64(p.Active)
		wd := int(p.Time.Weekday())
		wdSum[wd] += float64(p.Active)
		wdN[wd]++
	}
	if len(series) > 0 {
		s.Mean = sum / float64(len(series))
	}
	for i := range wdSum {
		if wdN[i] > 0 {
			s.ByWeekday[i] = wdSum[i] / float64(wdN[i])
		}
	}
	return s
}

// DailyPeaks reduces the hourly series to per-day maxima — the rendering
// used when printing the Figure 1 reproduction.
func DailyPeaks(series []HourPoint) []HourPoint {
	var out []HourPoint
	var cur time.Time
	var best HourPoint
	for _, p := range series {
		day := p.Time.Truncate(24 * time.Hour)
		if day != cur {
			if !cur.IsZero() {
				out = append(out, best)
			}
			cur = day
			best = p
		} else if p.Active > best.Active {
			best = p
		}
	}
	if !cur.IsZero() {
		out = append(out, best)
	}
	return out
}

// RenderASCII draws the daily-peak series as an ASCII chart, the harness's
// stand-in for Figure 1.
func RenderASCII(series []HourPoint, width int) string {
	peaks := DailyPeaks(series)
	maxV := 1
	for _, p := range peaks {
		if p.Active > maxV {
			maxV = p.Active
		}
	}
	var sb strings.Builder
	for _, p := range peaks {
		bar := p.Active * width / maxV
		fmt.Fprintf(&sb, "%s %s %3d %s\n",
			p.Time.Format("01/02"), p.Time.Weekday().String()[:3], p.Active,
			strings.Repeat("#", bar))
	}
	return sb.String()
}

// SubmissionArrivals converts the active-student series into per-hour job
// arrival counts for the load benchmarks: each active student submits
// jobsPerActiveHour compile/run requests per hour on average.
func SubmissionArrivals(series []HourPoint, jobsPerActiveHour float64) []float64 {
	out := make([]float64, len(series))
	for i, p := range series {
		out[i] = float64(p.Active) * jobsPerActiveHour
	}
	return out
}
