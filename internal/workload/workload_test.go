package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// Table I reproduction: the calibrated funnel's expectation must land on
// the paper's numbers within a small tolerance.
func TestCalibrationMatchesTableI(t *testing.T) {
	years := CalibratedYears()
	if len(years) != 3 {
		t.Fatalf("years = %d", len(years))
	}
	for i, p := range years {
		want := PaperTableI[i]
		got := p.Expected()
		if got.Registered != want.Registered {
			t.Errorf("%d: registered %d != %d", p.Year, got.Registered, want.Registered)
		}
		relErr := math.Abs(float64(got.Completions-want.Completions)) / float64(want.Completions)
		if relErr > 0.02 {
			t.Errorf("%d: completions %d vs paper %d (err %.1f%%)",
				p.Year, got.Completions, want.Completions, 100*relErr)
		}
		certErr := math.Abs(float64(got.Certificates - want.Certificates))
		if want.Certificates > 0 && certErr/float64(want.Certificates) > 0.02 {
			t.Errorf("%d: certificates %d vs paper %d", p.Year, got.Certificates, want.Certificates)
		}
	}
}

func TestSimulateNearExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range CalibratedYears() {
		exp := p.Expected()
		sim := p.Simulate(rng)
		relErr := math.Abs(float64(sim.Completions-exp.Completions)) / float64(exp.Completions)
		if relErr > 0.15 {
			t.Errorf("%d: simulated %d vs expected %d (err %.1f%%)",
				p.Year, sim.Completions, exp.Completions, 100*relErr)
		}
		if len(sim.WeeklyActive) != p.Weeks {
			t.Errorf("%d: weeks = %d", p.Year, len(sim.WeeklyActive))
		}
		// The weekly series is non-increasing (students only drop).
		for w := 1; w < len(sim.WeeklyActive); w++ {
			if sim.WeeklyActive[w] > sim.WeeklyActive[w-1] {
				t.Errorf("%d: weekly active increased at week %d", p.Year, w)
			}
		}
	}
}

func TestFormatTableI(t *testing.T) {
	out := FormatTableI(PaperTableI)
	for _, want := range []string{"2013", "36896", "7.40%", "442", "Completion Rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// 2013 had no certificates: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing certificate dash for 2013")
	}
}

// Figure 1 reproduction: the generated series must have the caption's
// shape — peak ~112 in the first full week, trough ~8 near the end,
// Wednesday the busiest weekday.
func TestFigure1SeriesShape(t *testing.T) {
	m := Figure1Model()
	series := m.HourlySeries()
	if len(series) != int(m.End.Sub(m.Start).Hours()) {
		t.Fatalf("series = %d points", len(series))
	}
	s := Stats(series)

	if s.Max < 95 || s.Max > 130 {
		t.Errorf("peak = %d, paper reports 112", s.Max)
	}
	// The peak lands in the early weeks of the course.
	if s.MaxAt.After(m.Start.AddDate(0, 0, 21)) {
		t.Errorf("peak at %v, expected within the first three weeks", s.MaxAt)
	}
	// The paper's peak day (Feb 18) is a Wednesday; ours must be too.
	if s.MaxAt.Weekday() != time.Wednesday {
		t.Errorf("peak on %v, want Wednesday", s.MaxAt.Weekday())
	}
	// Late-course trough near 8 (allow night-time zeros).
	if s.Min > 8 {
		t.Errorf("trough = %d, paper reports 8", s.Min)
	}
	if s.MinAt.Before(m.Start.AddDate(0, 0, 35)) {
		t.Errorf("trough at %v, expected late in the course", s.MinAt)
	}

	// Wednesday is the busiest weekday; the deadline day (Thursday) is
	// quieter, and the weekend quieter still.
	wed := s.ByWeekday[time.Wednesday]
	for _, wd := range []time.Weekday{time.Friday, time.Saturday, time.Sunday, time.Monday} {
		if s.ByWeekday[wd] >= wed {
			t.Errorf("%v mean %.1f >= Wednesday mean %.1f", wd, s.ByWeekday[wd], wed)
		}
	}
}

func TestFigure1Deterministic(t *testing.T) {
	a := Figure1Model().HourlySeries()
	b := Figure1Model().HourlySeries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series not deterministic at %d", i)
		}
	}
}

func TestDailyPeaks(t *testing.T) {
	m := Figure1Model()
	peaks := DailyPeaks(m.HourlySeries())
	wantDays := int(m.End.Sub(m.Start).Hours() / 24)
	if len(peaks) != wantDays {
		t.Errorf("daily peaks = %d, want %d", len(peaks), wantDays)
	}
	// Each peak is the max of its day.
	if peaks[0].Active <= 0 {
		t.Error("first day peak is zero")
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(Figure1Model().HourlySeries(), 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 60 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	if !strings.Contains(out, "Wed") || !strings.Contains(out, "#") {
		t.Errorf("chart malformed:\n%s", lines[0])
	}
}

func TestSubmissionArrivals(t *testing.T) {
	series := []HourPoint{{Active: 10}, {Active: 0}, {Active: 55}}
	arr := SubmissionArrivals(series, 2.0)
	if arr[0] != 20 || arr[1] != 0 || arr[2] != 110 {
		t.Errorf("arrivals = %v", arr)
	}
}
