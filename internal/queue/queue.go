// Package queue implements the message broker of the WebGPU 2.0
// architecture (§VI-A): topics of durable messages that worker nodes
// *poll* (rather than having jobs pushed at them), requirement tags so a
// lab needing MPI or multiple GPUs is only handed to a capable worker,
// visibility timeouts with redelivery for at-least-once semantics, a
// dead-letter queue for poison messages, and mirroring to a standby
// broker in another availability zone.
package queue

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"webgpu/internal/faultinject"
)

// Errors.
var (
	ErrClosed  = errors.New("queue: broker closed")
	ErrUnknown = errors.New("queue: unknown delivery")
)

// Message is one queued job or result.
type Message struct {
	ID       string
	Topic    string
	Payload  []byte
	Tags     []string // requirements: every tag must be in the consumer's capability set
	Enqueued time.Time
	Attempts int
}

// DefaultMaxAttempts moves a message to the dead-letter queue after this
// many failed deliveries.
const DefaultMaxAttempts = 5

type pending struct {
	msg       *Message
	visibleAt time.Time // zero = visible now
}

type inflight struct {
	msg      *Message
	deadline time.Time
	consumer string
}

// Broker is a topic-based message broker.
type Broker struct {
	mu          sync.Mutex
	closed      bool
	nextID      int
	topics      map[string][]*pending
	inflight    map[string]*inflight // delivery tag -> message
	dead        []*Message
	maxAttempts int
	clock       func() time.Time
	faults      *faultinject.Registry

	mirror *Broker // standby in another availability zone

	stats struct {
		published   int64
		delivered   int64
		acked       int64
		nacked      int64
		redelivered int64
		deadLetters int64
	}
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:      map[string][]*pending{},
		inflight:    map[string]*inflight{},
		maxAttempts: DefaultMaxAttempts,
		clock:       time.Now,
	}
}

// SetClock overrides the time source (tests).
func (b *Broker) SetClock(clock func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock = clock
}

// SetFaults attaches a fault-injection registry; nil (the default)
// disables injection. Latency faults stall the broker the way a
// congested real broker would.
func (b *Broker) SetFaults(r *faultinject.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = r
}

// SetMaxAttempts adjusts the dead-letter threshold.
func (b *Broker) SetMaxAttempts(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maxAttempts = n
}

// Mirror attaches a standby broker that receives a copy of every publish
// (§VI-A: the broker "can be replicated across Amazon availability zones
// — offering resiliency against faults").
func (b *Broker) Mirror(standby *Broker) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mirror = standby
}

// Close shuts the broker down.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

// Publish enqueues a payload on a topic with requirement tags, returning
// the message ID.
func (b *Broker) Publish(topic string, payload []byte, tags ...string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", ErrClosed
	}
	if err := b.faults.Fire(faultinject.PointQueuePublish); err != nil {
		return "", fmt.Errorf("queue: publish: %w", err)
	}
	b.nextID++
	id := fmt.Sprintf("msg-%08d", b.nextID)
	cp := make([]byte, len(payload))
	copy(cp, payload)
	msg := &Message{ID: id, Topic: topic, Payload: cp, Tags: append([]string(nil), tags...),
		Enqueued: b.clock()}
	b.topics[topic] = append(b.topics[topic], &pending{msg: msg})
	b.stats.published++
	if b.mirror != nil {
		m := b.mirror
		// Mirror synchronously outside our lock would deadlock on shared
		// clocks in tests; the mirror has its own lock, ordering is
		// one-directional so this is safe.
		go func() { _, _ = m.Publish(topic, cp, tags...) }()
	}
	return id, nil
}

// Delivery is a leased message; the consumer must Ack or Nack it before
// the visibility deadline or it is redelivered.
type Delivery struct {
	Msg *Message
	Tag string
	b   *Broker
}

// Poll attempts to lease the oldest visible message on the topic whose
// tags are all satisfied by the consumer's capability set. It returns
// (nil, false, nil) when nothing matches — the §VI-A semantics of "worker
// nodes poll the queue, accepting a job if the node meets the job
// requirements".
func (b *Broker) Poll(topic, consumer string, caps map[string]bool, visibility time.Duration) (*Delivery, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false, ErrClosed
	}
	if err := b.faults.Fire(faultinject.PointQueuePoll); err != nil {
		return nil, false, fmt.Errorf("queue: poll: %w", err)
	}
	now := b.clock()
	b.expireLocked(now)
	queue := b.topics[topic]
	for i, p := range queue {
		if p.visibleAt.After(now) {
			continue
		}
		if !tagsSatisfied(p.msg.Tags, caps) {
			continue
		}
		// Lease it.
		b.topics[topic] = append(append([]*pending{}, queue[:i]...), queue[i+1:]...)
		p.msg.Attempts++
		tag := fmt.Sprintf("%s#%d", p.msg.ID, p.msg.Attempts)
		b.inflight[tag] = &inflight{msg: p.msg, deadline: now.Add(visibility), consumer: consumer}
		b.stats.delivered++
		if p.msg.Attempts > 1 {
			b.stats.redelivered++
		}
		return &Delivery{Msg: p.msg, Tag: tag, b: b}, true, nil
	}
	return nil, false, nil
}

// MetaPrefix marks informational tags (e.g. a job's trace ID) that ride
// on a message without constraining which consumer may lease it. Tags
// with a meta prefix are skipped during capability matching — otherwise a
// unique-per-job trace tag would make every job undeliverable.
const MetaPrefix = "trace:"

// MetaAttemptPrefix marks the informational tag carrying the delivery
// attempt that produced a result message, so consumers of TopicResults
// can recognise a redelivered job's duplicate result and dedup it.
const MetaAttemptPrefix = "attempt:"

// metaPrefixes lists every informational prefix exempt from capability
// matching.
var metaPrefixes = [...]string{MetaPrefix, MetaAttemptPrefix}

func isMetaTag(tag string) bool {
	for _, p := range metaPrefixes {
		if strings.HasPrefix(tag, p) {
			return true
		}
	}
	return false
}

// MetaTrace builds the informational tag carrying a trace ID.
func MetaTrace(id string) string { return MetaPrefix + id }

// TraceTag extracts the trace ID from a message's tags, or "".
func TraceTag(tags []string) string {
	for _, t := range tags {
		if strings.HasPrefix(t, MetaPrefix) {
			return strings.TrimPrefix(t, MetaPrefix)
		}
	}
	return ""
}

// MetaAttempt builds the informational tag carrying a delivery attempt.
func MetaAttempt(n int) string { return fmt.Sprintf("%s%d", MetaAttemptPrefix, n) }

// AttemptTag extracts the delivery attempt from a message's tags, or 0.
func AttemptTag(tags []string) int {
	for _, t := range tags {
		if strings.HasPrefix(t, MetaAttemptPrefix) {
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(t, MetaAttemptPrefix), "%d", &n); err == nil {
				return n
			}
		}
	}
	return 0
}

func tagsSatisfied(tags []string, caps map[string]bool) bool {
	for _, t := range tags {
		if isMetaTag(t) {
			continue
		}
		if !caps[t] {
			return false
		}
	}
	return true
}

// expireLocked returns timed-out in-flight messages to their topics (or
// the dead-letter queue).
func (b *Broker) expireLocked(now time.Time) {
	for tag, inf := range b.inflight {
		if now.Before(inf.deadline) {
			continue
		}
		delete(b.inflight, tag)
		b.requeueLocked(inf.msg)
	}
}

func (b *Broker) requeueLocked(msg *Message) {
	if msg.Attempts >= b.maxAttempts {
		b.dead = append(b.dead, msg)
		b.stats.deadLetters++
		return
	}
	b.topics[msg.Topic] = append(b.topics[msg.Topic], &pending{msg: msg})
}

// Ack completes a delivery; the message is gone. A failed Ack (network
// partition, injected fault) leaves the lease in place: it expires and
// the message is redelivered — the at-least-once contract.
func (d *Delivery) Ack() error {
	b := d.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.faults.Fire(faultinject.PointQueueAck); err != nil {
		return fmt.Errorf("queue: ack: %w", err)
	}
	if _, ok := b.inflight[d.Tag]; !ok {
		return fmt.Errorf("%w: %s (already acked, nacked, or expired)", ErrUnknown, d.Tag)
	}
	delete(b.inflight, d.Tag)
	b.stats.acked++
	return nil
}

// Nack returns the message to its topic immediately (or dead-letters it
// after too many attempts).
func (d *Delivery) Nack() error {
	b := d.b
	b.mu.Lock()
	defer b.mu.Unlock()
	inf, ok := b.inflight[d.Tag]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, d.Tag)
	}
	delete(b.inflight, d.Tag)
	b.stats.nacked++
	b.requeueLocked(inf.msg)
	return nil
}

// Depth reports visible plus leased messages on a topic.
func (b *Broker) Depth(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	n := len(b.topics[topic])
	for _, inf := range b.inflight {
		if inf.msg.Topic == topic {
			n++
		}
	}
	return n
}

// Backlog reports only the visible (not leased) messages on a topic; the
// autoscaler watches this.
func (b *Broker) Backlog(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	return len(b.topics[topic])
}

// OldestAge returns how long the oldest visible message has waited, or
// zero when the topic is empty.
func (b *Broker) OldestAge(topic string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock()
	b.expireLocked(now)
	var oldest time.Time
	for _, p := range b.topics[topic] {
		if oldest.IsZero() || p.msg.Enqueued.Before(oldest) {
			oldest = p.msg.Enqueued
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// RedriveDeadLetters moves dead-lettered messages back onto their topics
// with a reset attempt count (the SQS redrive an operator runs after
// fixing the fault that poisoned them). It returns how many messages were
// redriven.
func (b *Broker) RedriveDeadLetters() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.dead)
	for _, msg := range b.dead {
		msg.Attempts = 0
		b.topics[msg.Topic] = append(b.topics[msg.Topic], &pending{msg: msg})
	}
	b.dead = nil
	return n
}

// DeadLetters returns a copy of the dead-letter queue.
func (b *Broker) DeadLetters() []*Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Message, len(b.dead))
	copy(out, b.dead)
	return out
}

// Stats is a snapshot of broker counters.
type Stats struct {
	Published, Delivered, Acked, Nacked, Redelivered, DeadLetters int64
	Inflight                                                      int
}

// Unaccounted checks the broker's conservation invariant: every published
// message is in exactly one of four states — acked (gone), dead-lettered,
// leased in flight, or visible on a topic. It returns
//
//	published - acked - |dead| - |inflight| - |visible across all topics|
//
// which is zero on a healthy broker; a positive value means messages were
// lost, a negative one means a message was double-counted. The chaos soak
// harness asserts this stays zero under fault injection.
func (b *Broker) Unaccounted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.clock())
	visible := 0
	for _, q := range b.topics {
		visible += len(q)
	}
	return b.stats.published - b.stats.acked -
		int64(len(b.dead)) - int64(len(b.inflight)) - int64(visible)
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Published:   b.stats.published,
		Delivered:   b.stats.delivered,
		Acked:       b.stats.acked,
		Nacked:      b.stats.nacked,
		Redelivered: b.stats.redelivered,
		DeadLetters: b.stats.deadLetters,
		Inflight:    len(b.inflight),
	}
}
