package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func anyCaps() map[string]bool {
	return map[string]bool{"cuda": true, "opencl": true, "mpi": true, "multi-gpu": true}
}

func TestPublishPollAck(t *testing.T) {
	b := NewBroker()
	id, err := b.Publish("jobs", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	d, ok, err := b.Poll("jobs", "w1", anyCaps(), time.Minute)
	if err != nil || !ok {
		t.Fatalf("poll: %v %v", ok, err)
	}
	if d.Msg.ID != id || string(d.Msg.Payload) != "payload" {
		t.Errorf("msg = %+v", d.Msg)
	}
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Poll("jobs", "w1", anyCaps(), time.Minute); ok {
		t.Error("acked message redelivered")
	}
	s := b.Stats()
	if s.Published != 1 || s.Delivered != 1 || s.Acked != 1 || s.Inflight != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFIFOWithinTopic(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 3; i++ {
		if _, err := b.Publish("jobs", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
		if !ok {
			t.Fatal("missing message")
		}
		if d.Msg.Payload[0] != byte('a'+i) {
			t.Errorf("order violated: got %c at %d", d.Msg.Payload[0], i)
		}
		_ = d.Ack()
	}
}

func TestTagFiltering(t *testing.T) {
	b := NewBroker()
	_, _ = b.Publish("jobs", []byte("mpi-job"), "mpi", "multi-gpu")
	_, _ = b.Publish("jobs", []byte("plain-job"))

	// A plain CUDA worker must skip the MPI job and get the plain one.
	plainCaps := map[string]bool{"cuda": true}
	d, ok, _ := b.Poll("jobs", "w1", plainCaps, time.Minute)
	if !ok || string(d.Msg.Payload) != "plain-job" {
		t.Fatalf("plain worker got %v", d)
	}
	_ = d.Ack()
	if _, ok, _ := b.Poll("jobs", "w1", plainCaps, time.Minute); ok {
		t.Error("plain worker leased the MPI job")
	}
	// The capable worker gets it.
	d2, ok, _ := b.Poll("jobs", "w2", anyCaps(), time.Minute)
	if !ok || string(d2.Msg.Payload) != "mpi-job" {
		t.Fatalf("capable worker got %v", d2)
	}
}

func TestVisibilityTimeoutRedelivery(t *testing.T) {
	b := NewBroker()
	now := time.Unix(0, 0)
	b.SetClock(func() time.Time { return now })
	_, _ = b.Publish("jobs", []byte("x"))
	d, ok, _ := b.Poll("jobs", "w1", anyCaps(), 30*time.Second)
	if !ok {
		t.Fatal("no message")
	}
	// Before the deadline: invisible.
	now = now.Add(10 * time.Second)
	if _, ok, _ := b.Poll("jobs", "w2", anyCaps(), 30*time.Second); ok {
		t.Fatal("leased message visible early")
	}
	// After the deadline: redelivered, attempts incremented.
	now = now.Add(30 * time.Second)
	d2, ok, _ := b.Poll("jobs", "w2", anyCaps(), 30*time.Second)
	if !ok {
		t.Fatal("expired message not redelivered")
	}
	if d2.Msg.Attempts != 2 {
		t.Errorf("attempts = %d", d2.Msg.Attempts)
	}
	// The original consumer's late Ack now fails.
	if err := d.Ack(); !errors.Is(err, ErrUnknown) {
		t.Errorf("stale ack = %v", err)
	}
	if b.Stats().Redelivered != 1 {
		t.Errorf("redelivered = %d", b.Stats().Redelivered)
	}
}

func TestNackRequeuesImmediately(t *testing.T) {
	b := NewBroker()
	_, _ = b.Publish("jobs", []byte("x"))
	d, _, _ := b.Poll("jobs", "w1", anyCaps(), time.Minute)
	if err := d.Nack(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Poll("jobs", "w1", anyCaps(), time.Minute); !ok {
		t.Fatal("nacked message not requeued")
	}
}

func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	b := NewBroker()
	b.SetMaxAttempts(3)
	_, _ = b.Publish("jobs", []byte("poison"))
	for i := 0; i < 3; i++ {
		d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
		if !ok {
			t.Fatalf("attempt %d: message unavailable", i)
		}
		_ = d.Nack()
	}
	if _, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute); ok {
		t.Fatal("poison message still delivered")
	}
	dls := b.DeadLetters()
	if len(dls) != 1 || string(dls[0].Payload) != "poison" {
		t.Errorf("dead letters = %v", dls)
	}
}

func TestRedriveDeadLetters(t *testing.T) {
	b := NewBroker()
	b.SetMaxAttempts(2)
	_, _ = b.Publish("jobs", []byte("poison"), "cuda")
	for i := 0; i < 2; i++ {
		d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
		if !ok {
			t.Fatal("no message")
		}
		_ = d.Nack()
	}
	if len(b.DeadLetters()) != 1 {
		t.Fatal("message not dead-lettered")
	}
	if n := b.RedriveDeadLetters(); n != 1 {
		t.Fatalf("redriven = %d", n)
	}
	if len(b.DeadLetters()) != 0 {
		t.Error("DLQ not emptied")
	}
	// The message is deliverable again with a fresh attempt budget and its
	// tags intact.
	d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
	if !ok || d.Msg.Attempts != 1 || len(d.Msg.Tags) != 1 {
		t.Fatalf("redriven delivery = %+v", d)
	}
	_ = d.Ack()
}

func TestDepthAndBacklog(t *testing.T) {
	b := NewBroker()
	now := time.Unix(0, 0)
	b.SetClock(func() time.Time { return now })
	_, _ = b.Publish("jobs", []byte("a"))
	_, _ = b.Publish("jobs", []byte("b"))
	if b.Depth("jobs") != 2 || b.Backlog("jobs") != 2 {
		t.Errorf("depth=%d backlog=%d", b.Depth("jobs"), b.Backlog("jobs"))
	}
	_, _, _ = b.Poll("jobs", "w", anyCaps(), time.Minute)
	if b.Depth("jobs") != 2 || b.Backlog("jobs") != 1 {
		t.Errorf("after lease: depth=%d backlog=%d", b.Depth("jobs"), b.Backlog("jobs"))
	}
	now = now.Add(45 * time.Second)
	if got := b.OldestAge("jobs"); got != 45*time.Second {
		t.Errorf("oldest age = %v", got)
	}
}

func TestTopicsIndependent(t *testing.T) {
	b := NewBroker()
	_, _ = b.Publish("jobs", []byte("j"))
	_, _ = b.Publish("results", []byte("r"))
	d, ok, _ := b.Poll("results", "w", anyCaps(), time.Minute)
	if !ok || string(d.Msg.Payload) != "r" {
		t.Fatalf("results poll = %v", d)
	}
	if b.Depth("jobs") != 1 {
		t.Error("jobs topic drained by results poll")
	}
}

func TestClosedBroker(t *testing.T) {
	b := NewBroker()
	b.Close()
	if _, err := b.Publish("jobs", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("publish = %v", err)
	}
	if _, _, err := b.Poll("jobs", "w", anyCaps(), time.Minute); !errors.Is(err, ErrClosed) {
		t.Errorf("poll = %v", err)
	}
}

func TestMirrorReceivesPublishes(t *testing.T) {
	primary := NewBroker()
	standby := NewBroker()
	primary.Mirror(standby)
	for i := 0; i < 10; i++ {
		_, _ = primary.Publish("jobs", []byte{byte(i)}, "cuda")
	}
	// Mirroring is async; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for standby.Depth("jobs") < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := standby.Depth("jobs"); got != 10 {
		t.Fatalf("standby depth = %d", got)
	}
	// After failover, the standby serves the jobs with tags intact.
	d, ok, _ := standby.Poll("jobs", "w", anyCaps(), time.Minute)
	if !ok || len(d.Msg.Tags) != 1 || d.Msg.Tags[0] != "cuda" {
		t.Errorf("standby delivery = %+v", d)
	}
}

func TestConcurrentConsumersNoDuplicates(t *testing.T) {
	b := NewBroker()
	const n = 200
	for i := 0; i < n; i++ {
		_, _ = b.Publish("jobs", []byte(fmt.Sprintf("%d", i)))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				d, ok, err := b.Poll("jobs", fmt.Sprintf("w%d", w), anyCaps(), time.Minute)
				if err != nil || !ok {
					return
				}
				mu.Lock()
				seen[string(d.Msg.Payload)]++
				mu.Unlock()
				_ = d.Ack()
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), n)
	}
	for k, v := range seen {
		if v != 1 {
			t.Errorf("message %s delivered %d times", k, v)
		}
	}
}

func TestMetaTagsDoNotConstrainDelivery(t *testing.T) {
	b := NewBroker()
	// A job tagged only with its trace ID must be deliverable by any
	// worker: meta tags annotate, they do not constrain (§VI-B tags are
	// capability requirements; trace IDs are not capabilities).
	_, _ = b.Publish("jobs", []byte("traced-job"), MetaTrace("tr-deadbeef"))
	d, ok, _ := b.Poll("jobs", "w1", map[string]bool{"cuda": true}, time.Minute)
	if !ok || string(d.Msg.Payload) != "traced-job" {
		t.Fatalf("traced job not delivered: %v", d)
	}
	if got := TraceTag(d.Msg.Tags); got != "tr-deadbeef" {
		t.Errorf("TraceTag = %q, want tr-deadbeef", got)
	}
	_ = d.Ack()

	// Real capability tags still constrain even when a meta tag rides along.
	_, _ = b.Publish("jobs", []byte("mpi-traced"), "mpi", MetaTrace("tr-feedface"))
	if _, ok, _ := b.Poll("jobs", "w1", map[string]bool{"cuda": true}, time.Minute); ok {
		t.Error("mpi job delivered to a non-mpi worker")
	}
	d2, ok, _ := b.Poll("jobs", "w2", anyCaps(), time.Minute)
	if !ok || string(d2.Msg.Payload) != "mpi-traced" {
		t.Fatalf("capable worker got %v", d2)
	}
}

func TestTraceTagAbsent(t *testing.T) {
	if got := TraceTag([]string{"mpi", "multi-gpu"}); got != "" {
		t.Errorf("TraceTag = %q, want empty", got)
	}
}
