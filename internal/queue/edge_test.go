package queue

import (
	"errors"
	"testing"
	"time"
)

// TestTagMatchingMatrix is the table-driven contract for capability
// matching: meta tags (trace, attempt) never constrain delivery, real
// tags always do, in any combination.
func TestTagMatchingMatrix(t *testing.T) {
	cudaOnly := map[string]bool{"cuda": true}
	cases := []struct {
		name        string
		tags        []string
		caps        map[string]bool
		wantDeliver bool
	}{
		{"no tags, no caps", nil, map[string]bool{}, true},
		{"trace tag only", []string{MetaTrace("tr-1")}, map[string]bool{}, true},
		{"attempt tag only", []string{MetaAttempt(3)}, map[string]bool{}, true},
		{"both meta tags", []string{MetaTrace("tr-1"), MetaAttempt(2)}, map[string]bool{}, true},
		{"capability met", []string{"cuda"}, cudaOnly, true},
		{"capability missing", []string{"mpi"}, cudaOnly, false},
		{"capability + meta, met", []string{"cuda", MetaTrace("tr-1")}, cudaOnly, true},
		{"capability + meta, missing", []string{"mpi", MetaAttempt(1)}, cudaOnly, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBroker()
			_, _ = b.Publish("jobs", []byte("m"), tc.tags...)
			_, ok, err := b.Poll("jobs", "w", tc.caps, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.wantDeliver {
				t.Errorf("delivered = %v, want %v", ok, tc.wantDeliver)
			}
		})
	}
}

func TestAttemptTag(t *testing.T) {
	cases := []struct {
		tags []string
		want int
	}{
		{nil, 0},
		{[]string{"cuda"}, 0},
		{[]string{MetaAttempt(1)}, 1},
		{[]string{MetaTrace("tr"), MetaAttempt(7), "cuda"}, 7},
		{[]string{MetaAttemptPrefix + "notanumber"}, 0},
	}
	for _, tc := range cases {
		if got := AttemptTag(tc.tags); got != tc.want {
			t.Errorf("AttemptTag(%v) = %d, want %d", tc.tags, got, tc.want)
		}
	}
}

// TestRedriveThenRepoison checks a redriven message keeps misbehaving
// correctly: its attempt budget resets, and exhausting it again parks it
// in the DLQ a second time rather than looping forever.
func TestRedriveThenRepoison(t *testing.T) {
	b := NewBroker()
	b.SetMaxAttempts(2)
	_, _ = b.Publish("jobs", []byte("poison"))
	exhaust := func() {
		t.Helper()
		for i := 0; i < 2; i++ {
			d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
			if !ok {
				t.Fatal("no message")
			}
			_ = d.Nack()
		}
	}
	exhaust()
	if n := b.RedriveDeadLetters(); n != 1 {
		t.Fatalf("first redrive = %d", n)
	}
	exhaust()
	if got := len(b.DeadLetters()); got != 1 {
		t.Fatalf("re-poisoned DLQ = %d entries, want 1", got)
	}
	if got := b.Stats().DeadLetters; got != 2 {
		t.Errorf("cumulative dead letters = %d, want 2", got)
	}
	if u := b.Unaccounted(); u != 0 {
		t.Errorf("unaccounted = %d after redrive cycle", u)
	}
}

// TestPollZeroVisibility: a zero-length lease expires instantly, so the
// next poll redelivers and the original delivery can no longer ack.
func TestPollZeroVisibility(t *testing.T) {
	b := NewBroker()
	now := time.Unix(0, 0)
	b.SetClock(func() time.Time { return now })
	_, _ = b.Publish("jobs", []byte("x"))
	d1, ok, _ := b.Poll("jobs", "w1", anyCaps(), 0)
	if !ok {
		t.Fatal("no message")
	}
	d2, ok, _ := b.Poll("jobs", "w2", anyCaps(), time.Minute)
	if !ok {
		t.Fatal("zero-visibility lease not instantly redelivered")
	}
	if d2.Msg.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", d2.Msg.Attempts)
	}
	if err := d1.Ack(); !errors.Is(err, ErrUnknown) {
		t.Errorf("stale ack = %v, want ErrUnknown", err)
	}
	if err := d2.Ack(); err != nil {
		t.Errorf("live ack = %v", err)
	}
}

// TestMirrorAfterPrimaryClose: publishes made before the close are on the
// standby and stay serviceable; the closed primary accepts nothing new
// and sends nothing new to the mirror. The standby is an independent
// broker — direct publishes to it keep working.
func TestMirrorAfterPrimaryClose(t *testing.T) {
	primary := NewBroker()
	standby := NewBroker()
	primary.Mirror(standby)
	_, _ = primary.Publish("jobs", []byte("before"))
	deadline := time.Now().Add(2 * time.Second)
	for standby.Depth("jobs") < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	primary.Close()

	if _, err := primary.Publish("jobs", []byte("after")); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish on closed primary = %v", err)
	}
	if got := standby.Depth("jobs"); got != 1 {
		t.Fatalf("standby depth = %d, want 1 (no mirroring after close)", got)
	}
	d, ok, _ := standby.Poll("jobs", "w", anyCaps(), time.Minute)
	if !ok || string(d.Msg.Payload) != "before" {
		t.Fatalf("standby delivery = %v", d)
	}
	_ = d.Ack()
	if _, err := standby.Publish("jobs", []byte("direct")); err != nil {
		t.Fatalf("direct standby publish = %v", err)
	}
	if u := standby.Unaccounted(); u != 0 {
		t.Errorf("standby unaccounted = %d", u)
	}
}

// TestConservationInvariant drives the broker through every lifecycle
// transition and checks Unaccounted() == 0 after each step: no operation
// may lose a message or count one twice.
func TestConservationInvariant(t *testing.T) {
	type step struct {
		name string
		op   func(t *testing.T, b *Broker, env map[string]*Delivery)
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"publish poll ack", []step{
			{"publish", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				_, _ = b.Publish("jobs", []byte("a"))
			}},
			{"poll", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				if !ok {
					t.Fatal("no message")
				}
				env["d"] = d
			}},
			{"ack", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				_ = env["d"].Ack()
			}},
		}},
		{"nack cycle", []step{
			{"publish", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				_, _ = b.Publish("jobs", []byte("a"))
			}},
			{"poll+nack", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, _, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				_ = d.Nack()
			}},
			{"repoll+ack", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, _, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				_ = d.Ack()
			}},
		}},
		{"poison redrive drain", []step{
			{"publish", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				b.SetMaxAttempts(1)
				_, _ = b.Publish("jobs", []byte("a"))
			}},
			{"poison", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, _, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				_ = d.Nack()
			}},
			{"redrive", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				if n := b.RedriveDeadLetters(); n != 1 {
					t.Fatalf("redriven = %d", n)
				}
			}},
			{"drain", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, _, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				_ = d.Ack()
			}},
		}},
		{"expired lease", []step{
			{"publish", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				_, _ = b.Publish("jobs", []byte("a"))
			}},
			{"zero-vis poll", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				_, _, _ = b.Poll("jobs", "w", anyCaps(), 0)
			}},
			{"redeliver+ack", func(t *testing.T, b *Broker, env map[string]*Delivery) {
				d, ok, _ := b.Poll("jobs", "w", anyCaps(), time.Minute)
				if !ok {
					t.Fatal("expired lease not redelivered")
				}
				_ = d.Ack()
			}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBroker()
			env := map[string]*Delivery{}
			for _, s := range tc.steps {
				s.op(t, b, env)
				if u := b.Unaccounted(); u != 0 {
					t.Fatalf("after %q: unaccounted = %d", s.name, u)
				}
			}
		})
	}
}
