package queue

import (
	"testing"
	"time"
)

func BenchmarkPublishPollAck(b *testing.B) {
	br := NewBroker()
	caps := map[string]bool{"cuda": true}
	payload := make([]byte, 512)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish("jobs", payload); err != nil {
			b.Fatal(err)
		}
		d, ok, err := br.Poll("jobs", "w", caps, time.Minute)
		if err != nil || !ok {
			b.Fatal("poll failed")
		}
		if err := d.Ack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPollSkipsTaggedBacklog(b *testing.B) {
	br := NewBroker()
	// A backlog of jobs this consumer cannot take, plus one it can.
	for i := 0; i < 256; i++ {
		if _, err := br.Publish("jobs", nil, "mpi"); err != nil {
			b.Fatal(err)
		}
	}
	caps := map[string]bool{"cuda": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish("jobs", nil); err != nil {
			b.Fatal(err)
		}
		d, ok, err := br.Poll("jobs", "w", caps, time.Minute)
		if err != nil || !ok {
			b.Fatal("poll failed")
		}
		_ = d.Ack()
	}
}

func BenchmarkDepthWithInflight(b *testing.B) {
	br := NewBroker()
	caps := map[string]bool{}
	for i := 0; i < 128; i++ {
		_, _ = br.Publish("jobs", nil)
	}
	for i := 0; i < 64; i++ {
		_, _, _ = br.Poll("jobs", "w", caps, time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := br.Depth("jobs"); got != 128 {
			b.Fatalf("depth = %d", got)
		}
	}
}
