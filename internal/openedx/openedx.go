// Package openedx implements the WebGPU 2.0 front-end integration
// (§VI-A): "We now use OpenEdx as an interface for instructors to author
// the labs and the students to develop the labs. This was a result of
// both instructors and students wanting the same site and interface for
// all course content." The package provides the programming XBlock
// definition that embeds a WebGPU lab in a course unit, LTI-style signed
// launch requests so the LMS can hand authenticated students to the
// platform, and grade passback from WebGPU to the LMS gradebook.
package openedx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"webgpu/internal/grader"
	"webgpu/internal/labs"
)

// Errors.
var (
	ErrBadSignature = errors.New("openedx: launch signature invalid")
	ErrExpired      = errors.New("openedx: launch request expired")
	ErrUnknownLab   = errors.New("openedx: xblock references an unknown lab")
)

// XBlock is the definition an instructor places in a course unit to embed
// a WebGPU lab; OpenEdx stores it as JSON in the course structure.
type XBlock struct {
	Type        string  `json:"type"` // always "webgpu_lab"
	LabID       string  `json:"lab_id"`
	DisplayName string  `json:"display_name"`
	Weight      float64 `json:"weight"` // share of the unit grade
	MaxPoints   int     `json:"max_points"`
	Deadline    string  `json:"deadline,omitempty"` // RFC3339
}

// NewXBlock builds (and validates) the XBlock for a catalog lab.
func NewXBlock(labID string, weight float64, deadline time.Time) (*XBlock, error) {
	l := labs.ByID(labID)
	if l == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLab, labID)
	}
	xb := &XBlock{
		Type:        "webgpu_lab",
		LabID:       l.ID,
		DisplayName: l.Name,
		Weight:      weight,
		MaxPoints:   l.MaxPoints(),
	}
	if !deadline.IsZero() {
		xb.Deadline = deadline.Format(time.RFC3339)
	}
	return xb, nil
}

// Marshal renders the XBlock as course-structure JSON.
func (xb *XBlock) Marshal() []byte {
	b, _ := json.Marshal(xb)
	return b
}

// ParseXBlock loads an XBlock definition, validating the lab reference.
func ParseXBlock(data []byte) (*XBlock, error) {
	var xb XBlock
	if err := json.Unmarshal(data, &xb); err != nil {
		return nil, fmt.Errorf("openedx: bad xblock: %w", err)
	}
	if xb.Type != "webgpu_lab" {
		return nil, fmt.Errorf("openedx: unexpected block type %q", xb.Type)
	}
	if labs.ByID(xb.LabID) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLab, xb.LabID)
	}
	return &xb, nil
}

// Launch is the signed request OpenEdx sends when a student opens the
// XBlock: it identifies the student, the lab, and the callback the
// platform should push the grade to.
type Launch struct {
	UserID    string `json:"user_id"` // LMS anonymous user id
	Email     string `json:"email"`
	FullName  string `json:"full_name"`
	LabID     string `json:"lab_id"`
	ResultID  string `json:"result_id"` // grade-passback sourcedid
	IssuedAt  int64  `json:"issued_at"` // unix seconds
	Signature string `json:"signature,omitempty"`
}

// LaunchWindow bounds how old a signed launch may be.
const LaunchWindow = 5 * time.Minute

// baseString serializes the signed fields in a canonical order, the
// OAuth-style base string of LTI 1.x.
func (l *Launch) baseString() string {
	fields := map[string]string{
		"user_id":   l.UserID,
		"email":     l.Email,
		"full_name": l.FullName,
		"lab_id":    l.LabID,
		"result_id": l.ResultID,
		"issued_at": strconv.FormatInt(l.IssuedAt, 10),
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(fields[k])
		sb.WriteByte('&')
	}
	return sb.String()
}

// Sign computes and stores the launch signature under the shared secret.
func (l *Launch) Sign(secret []byte) {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(l.baseString()))
	l.Signature = hex.EncodeToString(mac.Sum(nil))
}

// Verify checks the signature and freshness of a launch.
func (l *Launch) Verify(secret []byte, now time.Time) error {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(l.baseString()))
	want := hex.EncodeToString(mac.Sum(nil))
	if !hmac.Equal([]byte(want), []byte(l.Signature)) {
		return ErrBadSignature
	}
	issued := time.Unix(l.IssuedAt, 0)
	if now.Sub(issued) > LaunchWindow || issued.Sub(now) > time.Minute {
		return fmt.Errorf("%w: issued %v", ErrExpired, issued)
	}
	if labs.ByID(l.LabID) == nil {
		return fmt.Errorf("%w: %q", ErrUnknownLab, l.LabID)
	}
	return nil
}

// Connector is the LMS side of grade passback: WebGPU pushes each
// submission's score back under the launch's result id, normalized to the
// XBlock weight as OpenEdx expects (0..1).
type Connector struct {
	secret []byte
	mu     sync.Mutex
	scores map[string]float64 // result id -> normalized score
	pushes int64
}

// NewConnector creates a connector with the shared secret.
func NewConnector(secret []byte) *Connector {
	return &Connector{secret: secret, scores: map[string]float64{}}
}

// NewLaunch builds a signed launch for a student opening an XBlock.
func (c *Connector) NewLaunch(userID, email, name, labID string, now time.Time) *Launch {
	l := &Launch{
		UserID:   userID,
		Email:    email,
		FullName: name,
		LabID:    labID,
		ResultID: "sourcedid:" + userID + ":" + labID,
		IssuedAt: now.Unix(),
	}
	l.Sign(c.secret)
	return l
}

// PushGrade records a grade for the result id, normalized to [0,1].
// This is the role the Coursera gradebook played in v1 and the OpenEdx
// scores API plays in v2.
func (c *Connector) PushGrade(resultID string, g *grader.Grade) error {
	if g.Max <= 0 {
		return fmt.Errorf("openedx: grade has no max points")
	}
	score := float64(g.Total) / float64(g.Max)
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scores[resultID] = score
	c.pushes++
	return nil
}

// Score reads back a normalized score.
func (c *Connector) Score(resultID string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.scores[resultID]
	return s, ok
}

// Pushes reports how many grade passbacks occurred.
func (c *Connector) Pushes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pushes
}

// Gradebook adapts the connector to the grader.Gradebook interface so the
// platform can write v2 grades straight through to the LMS.
type Gradebook struct {
	C      *Connector
	mu     sync.Mutex
	grades map[string]*grader.Grade
}

// NewGradebook wraps a connector.
func NewGradebook(c *Connector) *Gradebook {
	return &Gradebook{C: c, grades: map[string]*grader.Grade{}}
}

// Record implements grader.Gradebook: it keeps the detailed grade and
// pushes the normalized score to the LMS.
func (g *Gradebook) Record(gr *grader.Grade) error {
	if gr.UserID == "" || gr.LabID == "" {
		return fmt.Errorf("openedx: grade missing user or lab id")
	}
	g.mu.Lock()
	cp := *gr
	g.grades[gr.UserID+"\x00"+gr.LabID] = &cp
	g.mu.Unlock()
	return g.C.PushGrade("sourcedid:"+gr.UserID+":"+gr.LabID, gr)
}

// Lookup implements grader.Gradebook.
func (g *Gradebook) Lookup(userID, labID string) (*grader.Grade, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gr, ok := g.grades[userID+"\x00"+labID]
	if !ok {
		return nil, grader.ErrNoSuchGrade
	}
	cp := *gr
	return &cp, nil
}

var _ grader.Gradebook = (*Gradebook)(nil)
