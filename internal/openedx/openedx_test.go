package openedx

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"webgpu/internal/grader"
	"webgpu/internal/labs"
)

var secret = []byte("course-shared-secret")

func TestXBlockRoundTrip(t *testing.T) {
	deadline := time.Date(2015, 2, 19, 23, 59, 0, 0, time.UTC)
	xb, err := NewXBlock("tiled-matmul", 0.15, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if xb.DisplayName != "Tiled Matrix Multiplication" || xb.MaxPoints <= 0 {
		t.Errorf("xblock = %+v", xb)
	}
	parsed, err := ParseXBlock(xb.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.LabID != "tiled-matmul" || parsed.Deadline != deadline.Format(time.RFC3339) {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestXBlockValidation(t *testing.T) {
	if _, err := NewXBlock("no-such-lab", 0.1, time.Time{}); !errors.Is(err, ErrUnknownLab) {
		t.Errorf("err = %v", err)
	}
	if _, err := ParseXBlock([]byte(`{"type":"video","lab_id":"vector-add"}`)); err == nil {
		t.Error("wrong block type accepted")
	}
	if _, err := ParseXBlock([]byte(`{"type":"webgpu_lab","lab_id":"ghost"}`)); !errors.Is(err, ErrUnknownLab) {
		t.Errorf("ghost lab err = %v", err)
	}
	if _, err := ParseXBlock([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLaunchSignVerify(t *testing.T) {
	c := NewConnector(secret)
	now := time.Unix(1_423_400_000, 0)
	l := c.NewLaunch("lms-user-7", "s@example.edu", "Student Seven", "vector-add", now)
	if err := l.Verify(secret, now.Add(time.Minute)); err != nil {
		t.Fatalf("valid launch rejected: %v", err)
	}
	// Tampering with any signed field breaks the signature.
	tampered := *l
	tampered.LabID = "sgemm"
	if err := tampered.Verify(secret, now); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered lab err = %v", err)
	}
	tampered = *l
	tampered.UserID = "someone-else"
	if err := tampered.Verify(secret, now); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered user err = %v", err)
	}
	// Wrong secret fails.
	if err := l.Verify([]byte("other"), now); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong secret err = %v", err)
	}
}

func TestLaunchExpiry(t *testing.T) {
	c := NewConnector(secret)
	now := time.Unix(1_423_400_000, 0)
	l := c.NewLaunch("u", "e@x", "n", "vector-add", now)
	if err := l.Verify(secret, now.Add(LaunchWindow+time.Minute)); !errors.Is(err, ErrExpired) {
		t.Errorf("stale launch err = %v", err)
	}
	// Clock skew into the future is also rejected.
	if err := l.Verify(secret, now.Add(-2*time.Minute)); !errors.Is(err, ErrExpired) {
		t.Errorf("future launch err = %v", err)
	}
}

func TestLaunchUnknownLab(t *testing.T) {
	c := NewConnector(secret)
	now := time.Now()
	l := c.NewLaunch("u", "e@x", "n", "ghost-lab", now)
	if err := l.Verify(secret, now); !errors.Is(err, ErrUnknownLab) {
		t.Errorf("err = %v", err)
	}
}

func TestGradePassback(t *testing.T) {
	c := NewConnector(secret)
	g := &grader.Grade{UserID: "u1", LabID: "vector-add", Total: 84, Max: 105}
	if err := c.PushGrade("sourcedid:u1:vector-add", g); err != nil {
		t.Fatal(err)
	}
	score, ok := c.Score("sourcedid:u1:vector-add")
	if !ok || score < 0.79 || score > 0.81 {
		t.Errorf("score = %v %v", score, ok)
	}
	if c.Pushes() != 1 {
		t.Errorf("pushes = %d", c.Pushes())
	}
	if err := c.PushGrade("r", &grader.Grade{Total: 1}); err == nil {
		t.Error("zero-max grade accepted")
	}
	// Scores clamp to [0,1].
	_ = c.PushGrade("r2", &grader.Grade{Total: 200, Max: 100})
	if s, _ := c.Score("r2"); s != 1 {
		t.Errorf("clamped score = %v", s)
	}
}

func TestGradebookAdapter(t *testing.T) {
	c := NewConnector(secret)
	gb := NewGradebook(c)
	g := &grader.Grade{UserID: "u1", LabID: "spmv", Total: 50, Max: 100}
	if err := gb.Record(g); err != nil {
		t.Fatal(err)
	}
	got, err := gb.Lookup("u1", "spmv")
	if err != nil || got.Total != 50 {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if s, ok := c.Score("sourcedid:u1:spmv"); !ok || s != 0.5 {
		t.Errorf("lms score = %v %v", s, ok)
	}
	if _, err := gb.Lookup("ghost", "spmv"); !errors.Is(err, grader.ErrNoSuchGrade) {
		t.Errorf("ghost lookup = %v", err)
	}
	if err := gb.Record(&grader.Grade{}); err == nil {
		t.Error("empty grade accepted")
	}
}

// End-to-end: LMS launch → platform run → grade passback, the v2 Figure 6
// loop with OpenEdx at the front.
func TestLMSRoundTrip(t *testing.T) {
	c := NewConnector(secret)
	gb := NewGradebook(c)
	now := time.Now()

	launch := c.NewLaunch("lms-42", "x@lms.edu", "X", "vector-add", now)
	if err := launch.Verify(secret, now); err != nil {
		t.Fatal(err)
	}
	l := labs.ByID(launch.LabID)
	outs := labs.RunAll(context.Background(), l, l.Reference, labs.NewDeviceSet(1), 0)
	g := grader.Score(l, l.Reference, outs, len(l.Questions))
	g.UserID = launch.UserID
	if err := gb.Record(g); err != nil {
		t.Fatal(err)
	}
	score, ok := c.Score(launch.ResultID)
	if !ok || score != 1 {
		t.Fatalf("LMS score = %v %v (grade %d/%d)", score, ok, g.Total, g.Max)
	}
	if !strings.HasPrefix(launch.ResultID, "sourcedid:lms-42:") {
		t.Errorf("result id = %q", launch.ResultID)
	}
}
