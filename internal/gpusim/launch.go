package gpusim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// KernelFunc executes one thread of a kernel. Implementations must perform
// all device-memory traffic through the ThreadCtx accessors so that the
// cost model observes it. Returning a non-nil error aborts the launch with
// that error, mimicking a device-side trap.
type KernelFunc func(tc *ThreadCtx) error

// LaunchConfig describes a kernel launch: the grid of blocks, the block of
// threads, and the dynamic shared-memory size in bytes.
type LaunchConfig struct {
	Grid           Dim3
	Block          Dim3
	SharedMemBytes int

	// NoBarriers declares that the kernel never calls SyncThreads, letting
	// the simulator run a block's threads sequentially on one goroutine
	// instead of one goroutine per thread — a large speedup for the
	// map-style kernels most labs start with. A SyncThreads call under
	// this flag is reported as an error. The minicuda launcher sets it
	// automatically from the compiled program.
	NoBarriers bool

	// SchedSeed permutes the order in which a serial (NoBarriers) block
	// executes its threads. Zero keeps the natural flattened-index order.
	// Any thread ordering is a legal schedule for independent threads, so
	// a kernel whose output changes with the seed has an order-dependent
	// bug (a data race); the kernelcheck differential guard uses this to
	// confirm statically-reported races at runtime. Results, traps, and
	// cost accounting are unaffected for race-free kernels.
	SchedSeed uint64
}

// Validate checks the configuration against the device limits.
func (d *Device) validateLaunch(cfg LaunchConfig) error {
	p := d.props
	b, g := cfg.Block, cfg.Grid
	switch {
	case b.X <= 0 || b.Y <= 0 || b.Z <= 0:
		return fmt.Errorf("%w: non-positive block dimension %v", ErrInvalidLaunch, b)
	case g.X <= 0 || g.Y <= 0 || g.Z <= 0:
		return fmt.Errorf("%w: non-positive grid dimension %v", ErrInvalidLaunch, g)
	case b.Count() > p.MaxThreadsPerBlock:
		return fmt.Errorf("%w: %d threads per block exceeds limit %d",
			ErrInvalidLaunch, b.Count(), p.MaxThreadsPerBlock)
	case b.X > p.MaxBlockDim.X || b.Y > p.MaxBlockDim.Y || b.Z > p.MaxBlockDim.Z:
		return fmt.Errorf("%w: block %v exceeds limit %v", ErrInvalidLaunch, b, p.MaxBlockDim)
	case g.X > p.MaxGridDim.X || g.Y > p.MaxGridDim.Y || g.Z > p.MaxGridDim.Z:
		return fmt.Errorf("%w: grid %v exceeds limit %v", ErrInvalidLaunch, g, p.MaxGridDim)
	case cfg.SharedMemBytes < 0 || cfg.SharedMemBytes > p.SharedMemPerBlock:
		return fmt.Errorf("%w: %d bytes of shared memory exceeds limit %d",
			ErrInvalidLaunch, cfg.SharedMemBytes, p.SharedMemPerBlock)
	}
	return nil
}

// blockCtx holds the per-block state shared by the threads of one block:
// the shared-memory arena, the cyclic barrier, and the warp-level cost
// accounting tables.
type blockCtx struct {
	dev      *Device
	blockIdx Dim3
	cfg      LaunchConfig
	shared   []byte

	mu           sync.Mutex
	cond         *sync.Cond
	participants int // threads that have not yet exited
	arrived      int // threads waiting at the current barrier
	generation   int
	divergence   bool
	serial       bool

	aborted  *atomic.Bool
	abortErr *onceErr
}

// onceErr records the first error reported by any thread of a launch.
type onceErr struct {
	mu  sync.Mutex
	err error
}

func (o *onceErr) set(err error) {
	if err == nil {
		return
	}
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

func (o *onceErr) get() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

func newBlockCtx(dev *Device, blockIdx Dim3, cfg LaunchConfig, shared int, aborted *atomic.Bool, abortErr *onceErr) *blockCtx {
	bc := &blockCtx{
		dev:          dev,
		blockIdx:     blockIdx,
		cfg:          cfg,
		shared:       make([]byte, shared),
		participants: cfg.Block.Count(),
		aborted:      aborted,
		abortErr:     abortErr,
	}
	bc.cond = sync.NewCond(&bc.mu)
	return bc
}

// barrier implements __syncthreads. All live threads of the block must
// arrive before any proceeds. If a thread exits while others wait the
// simulator releases the waiters but flags barrier divergence, which the
// launch reports as an error: this is the class of bug (divergent
// __syncthreads) the course's tiled labs teach students to avoid.
func (bc *blockCtx) barrier() error {
	if bc.serial {
		return fmt.Errorf("%w: SyncThreads called in a launch declared NoBarriers",
			ErrInvalidLaunch)
	}
	if bc.aborted.Load() {
		return bc.abortErr.get()
	}
	bc.mu.Lock()
	gen := bc.generation
	bc.arrived++
	if bc.arrived == bc.participants {
		bc.arrived = 0
		bc.generation++
		bc.cond.Broadcast()
		bc.mu.Unlock()
		return nil
	}
	for gen == bc.generation && !bc.aborted.Load() {
		bc.cond.Wait()
	}
	diverged := bc.divergence
	bc.mu.Unlock()
	if bc.aborted.Load() {
		return bc.abortErr.get()
	}
	if diverged {
		return ErrBarrierDivergence
	}
	return nil
}

// threadExit removes a finished thread from the barrier's participant set.
func (bc *blockCtx) threadExit() {
	if bc.serial {
		// Serial blocks run on one goroutine and reject barriers, so there
		// is nothing to wake and no lock to take.
		bc.participants--
		return
	}
	bc.mu.Lock()
	bc.participants--
	if bc.arrived > 0 {
		// Some threads are blocked at a barrier this thread will never
		// reach: divergence.
		bc.divergence = true
		if bc.arrived == bc.participants {
			bc.arrived = 0
			bc.generation++
			bc.cond.Broadcast()
		}
	}
	bc.mu.Unlock()
}

func (bc *blockCtx) abortWake() {
	bc.mu.Lock()
	bc.cond.Broadcast()
	bc.mu.Unlock()
}

// ThreadCtx is the execution context of a single simulated GPU thread. It
// carries the CUDA builtin indices and provides the memory, barrier, and
// atomic operations a kernel may perform.
type ThreadCtx struct {
	Dev       *Device
	ThreadIdx Dim3
	BlockIdx  Dim3
	BlockDim  Dim3
	GridDim   Dim3

	block   *blockCtx
	warp    int
	stats   threadStats
	gEvents []gEvent // per-thread global-access log, indexed by access ordinal
	sEvents []sEvent // per-thread shared-access log

	cache *allocCache
}

// allocCacheSize is the number of allocations an access cache holds; course
// kernels touch at most a handful of distinct buffers.
const allocCacheSize = 4

// allocCache is a small direct cache of allocation backing stores: kernels
// overwhelmingly hammer the same few buffers, so remembering them skips the
// device mutex and map lookup on the hot path. alloc ids are never reused
// within a device, so a hit cannot alias a freed buffer. On the serial
// (barrier-free) block path one cache is shared by the whole block; on the
// concurrent path each thread owns one.
type allocCache struct {
	ids  [allocCacheSize]uint64
	data [allocCacheSize][]byte
	next int
}

// blockScratch holds the working arrays of one block run, recycled across
// blocks and launches through scratchPool: the ThreadCtx backing array
// dominates a launch's allocation volume, and blocks are short-lived, so
// reuse keeps the GC off the hot path. State-carrying arrays (ctxs,
// backing, caches) are cleared before reuse — caches in particular must
// not survive, since allocation ids are only unique within one device.
// The event slabs are reused as-is: carved logs start at length zero, so
// stale events are never observed.
type blockScratch struct {
	ctxs    []*ThreadCtx
	backing []ThreadCtx
	caches  []allocCache
	slabG   []gEvent
	slabS   []sEvent
}

var scratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// threadStats counts the work performed by one thread.
type threadStats struct {
	alu      int64
	special  int64
	branches int64
	barriers int64
	atomics  int64
	gLoads   int64
	gStores  int64
	sAccess  int64
	cLoads   int64
}

// FlatThreadIdx returns the linear index of the thread within its block.
func (tc *ThreadCtx) FlatThreadIdx() int {
	b := tc.BlockDim
	return tc.ThreadIdx.Z*b.Y*b.X + tc.ThreadIdx.Y*b.X + tc.ThreadIdx.X
}

// FlatBlockIdx returns the linear index of the block within the grid.
func (tc *ThreadCtx) FlatBlockIdx() int {
	g := tc.GridDim
	return tc.BlockIdx.Z*g.Y*g.X + tc.BlockIdx.Y*g.X + tc.BlockIdx.X
}

// GlobalThreadID returns the grid-wide linear thread id.
func (tc *ThreadCtx) GlobalThreadID() int {
	return tc.FlatBlockIdx()*tc.BlockDim.Count() + tc.FlatThreadIdx()
}

// SyncThreads implements __syncthreads.
func (tc *ThreadCtx) SyncThreads() error {
	tc.stats.barriers++
	return tc.block.barrier()
}

// Shared returns the block's shared-memory arena (static + dynamic).
func (tc *ThreadCtx) Shared() []byte { return tc.block.shared }

// CountALU charges n single-cycle arithmetic operations to the thread.
func (tc *ThreadCtx) CountALU(n int) { tc.stats.alu += int64(n) }

// CountSpecial charges n special-function-unit operations (sqrt, exp, ...).
func (tc *ThreadCtx) CountSpecial(n int) { tc.stats.special += int64(n) }

// CountBranch charges a branch instruction.
func (tc *ThreadCtx) CountBranch() { tc.stats.branches++ }

// CountBranches charges n branch instructions at once; a warp-level
// executor batches the per-lane branch charges of a whole launch into one
// call (only the block-level sum is observable).
func (tc *ThreadCtx) CountBranches(n int) { tc.stats.branches += int64(n) }

// CountBarriers charges n barrier arrivals at once (the warp executor's
// batched equivalent of the SyncThreads-internal charge).
func (tc *ThreadCtx) CountBarriers(n int) { tc.stats.barriers += int64(n) }

// Aborted reports whether the launch has been aborted by another thread's
// error; long-running native kernels should poll it inside loops.
func (tc *ThreadCtx) Aborted() bool { return tc.block.aborted.Load() }

// --- Global memory access ------------------------------------------------

func (tc *ThreadCtx) globalAccess(p Ptr, size int, store bool) ([]byte, error) {
	var data []byte
	ac := tc.cache
	if ac != nil {
		for i, id := range ac.ids {
			if id == p.alloc {
				data = ac.data[i]
				break
			}
		}
	}
	if data == nil {
		a, err := tc.Dev.lookup(p)
		if err != nil {
			return nil, err
		}
		data = a.data
		if ac != nil {
			slot := ac.next
			ac.ids[slot] = p.alloc
			ac.data[slot] = data
			ac.next = (slot + 1) % allocCacheSize
		}
	}
	if p.Off < 0 || size < 0 || p.Off+size > len(data) {
		return nil, fmt.Errorf("%w: offset %d size %d in allocation of %d bytes",
			ErrIllegalAccess, p.Off, size, len(data))
	}
	v := data[p.Off : p.Off+size]
	if store {
		tc.stats.gStores++
	} else {
		tc.stats.gLoads++
	}
	// Warp-synchronous coalescing model: the k-th global access of every
	// thread in a warp is assumed to issue together; the per-thread log is
	// aggregated at block end into distinct 128-byte segments.
	tc.gEvents = append(tc.gEvents, gEvent{
		alloc: p.alloc,
		segLo: int32(p.Off / segmentBytes),
		segHi: int32((p.Off + size - 1) / segmentBytes),
	})
	return v, nil
}

// LoadFloat32 loads a float32 at element index idx (in elements, not bytes).
func (tc *ThreadCtx) LoadFloat32(p Ptr, idx int) (float32, error) {
	v, err := tc.globalAccess(p.Offset(idx*4), 4, false)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(leU32(v)), nil
}

// StoreFloat32 stores a float32 at element index idx.
func (tc *ThreadCtx) StoreFloat32(p Ptr, idx int, val float32) error {
	v, err := tc.globalAccess(p.Offset(idx*4), 4, true)
	if err != nil {
		return err
	}
	putLeU32(v, math.Float32bits(val))
	return nil
}

// LoadInt32 loads an int32 at element index idx.
func (tc *ThreadCtx) LoadInt32(p Ptr, idx int) (int32, error) {
	v, err := tc.globalAccess(p.Offset(idx*4), 4, false)
	if err != nil {
		return 0, err
	}
	return int32(leU32(v)), nil
}

// StoreInt32 stores an int32 at element index idx.
func (tc *ThreadCtx) StoreInt32(p Ptr, idx int, val int32) error {
	v, err := tc.globalAccess(p.Offset(idx*4), 4, true)
	if err != nil {
		return err
	}
	putLeU32(v, uint32(val))
	return nil
}

// LoadByte loads a byte at byte index idx.
func (tc *ThreadCtx) LoadByte(p Ptr, idx int) (byte, error) {
	v, err := tc.globalAccess(p.Offset(idx), 1, false)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

// StoreByte stores a byte at byte index idx.
func (tc *ThreadCtx) StoreByte(p Ptr, idx int, val byte) error {
	v, err := tc.globalAccess(p.Offset(idx), 1, true)
	if err != nil {
		return err
	}
	v[0] = val
	return nil
}

// --- Shared memory access ------------------------------------------------

func (tc *ThreadCtx) sharedCheck(off, size int) error {
	if off < 0 || off+size > len(tc.block.shared) {
		return fmt.Errorf("%w: shared memory access [%d,%d) of %d bytes",
			ErrIllegalAccess, off, off+size, len(tc.block.shared))
	}
	tc.stats.sAccess++
	tc.sEvents = append(tc.sEvents, sEvent{word: int32(off / bankWidthBytes)})
	return nil
}

// SharedLoadFloat32 loads a float32 from shared memory at element index idx.
func (tc *ThreadCtx) SharedLoadFloat32(idx int) (float32, error) {
	if err := tc.sharedCheck(idx*4, 4); err != nil {
		return 0, err
	}
	return math.Float32frombits(leU32(tc.block.shared[idx*4:])), nil
}

// SharedStoreFloat32 stores a float32 into shared memory at element idx.
func (tc *ThreadCtx) SharedStoreFloat32(idx int, val float32) error {
	if err := tc.sharedCheck(idx*4, 4); err != nil {
		return err
	}
	putLeU32(tc.block.shared[idx*4:], math.Float32bits(val))
	return nil
}

// SharedLoadInt32 loads an int32 from shared memory at element index idx.
func (tc *ThreadCtx) SharedLoadInt32(idx int) (int32, error) {
	if err := tc.sharedCheck(idx*4, 4); err != nil {
		return 0, err
	}
	return int32(leU32(tc.block.shared[idx*4:])), nil
}

// SharedStoreInt32 stores an int32 into shared memory at element idx.
func (tc *ThreadCtx) SharedStoreInt32(idx int, val int32) error {
	if err := tc.sharedCheck(idx*4, 4); err != nil {
		return err
	}
	putLeU32(tc.block.shared[idx*4:], uint32(val))
	return nil
}

// --- Constant memory access ----------------------------------------------

// ConstLoadFloat32 loads a float32 from constant memory at element idx.
func (tc *ThreadCtx) ConstLoadFloat32(idx int) (float32, error) {
	cm := tc.Dev.constMem
	if idx < 0 || idx*4+4 > len(cm) {
		return 0, fmt.Errorf("%w: constant memory read at element %d", ErrIllegalAccess, idx)
	}
	tc.stats.cLoads++
	return math.Float32frombits(leU32(cm[idx*4:])), nil
}

// ConstLoadInt32 loads an int32 from constant memory at element idx.
func (tc *ThreadCtx) ConstLoadInt32(idx int) (int32, error) {
	cm := tc.Dev.constMem
	if idx < 0 || idx*4+4 > len(cm) {
		return 0, fmt.Errorf("%w: constant memory read at element %d", ErrIllegalAccess, idx)
	}
	tc.stats.cLoads++
	return int32(leU32(cm[idx*4:])), nil
}

// --- Launch engine ---------------------------------------------------------

// LaunchStats reports what a kernel launch did and the simulated time it
// took under the cost model.
type LaunchStats struct {
	Name         string
	Grid         Dim3
	Block        Dim3
	Blocks       int
	Threads      int
	ALUOps       int64
	SpecialOps   int64
	Branches     int64
	Barriers     int64
	Atomics      int64
	GlobalLoads  int64
	GlobalStores int64
	GlobalTx     int64 // distinct 128B memory transactions after coalescing
	SharedOps    int64
	SharedTx     int64 // bank-serialized shared accesses
	ConstLoads   int64
	SimCycles    int64
	SimTime      time.Duration
	WallTime     time.Duration
	Divergence   bool
}

// Launch executes kernel k over the configured grid and blocks synchronously
// (like a launch followed by cudaDeviceSynchronize) and returns statistics.
// Blocks are scheduled over the device's SMs; threads within a block run
// concurrently and may synchronize with SyncThreads.
func (d *Device) Launch(name string, cfg LaunchConfig, k KernelFunc) (*LaunchStats, error) {
	var aborted atomic.Bool
	abortErr := &onceErr{}
	return d.launchRun(name, cfg, &aborted, abortErr, func(bc *blockCtx) blockResult {
		return d.runBlock(bc, cfg, k, &aborted, abortErr)
	})
}

// launchRun is the launch scheduler shared by the per-thread and per-warp
// entry points: it validates the configuration, drains the grid's blocks
// over the simulated SMs, and folds block results into launch statistics.
func (d *Device) launchRun(name string, cfg LaunchConfig, aborted *atomic.Bool, abortErr *onceErr, runBlock func(*blockCtx) blockResult) (*LaunchStats, error) {
	if err := d.validateLaunch(cfg); err != nil {
		return nil, err
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, ErrDeviceClosed
	}

	start := time.Now()
	numBlocks := cfg.Grid.Count()
	threadsPerBlock := cfg.Block.Count()

	stats := &LaunchStats{
		Name:    name,
		Grid:    cfg.Grid,
		Block:   cfg.Block,
		Blocks:  numBlocks,
		Threads: numBlocks * threadsPerBlock,
	}

	// SM scheduler: each simulated SM is a goroutine draining a block queue.
	sms := d.props.MultiprocessorCount
	if sms <= 0 {
		sms = 1
	}
	// Don't oversubscribe the host: the simulated-time accounting is
	// independent of how many blocks run concurrently on the host.
	hostPar := sms
	if n := runtime.GOMAXPROCS(0); hostPar > 2*n {
		hostPar = 2 * n
	}

	blockCh := make(chan int, numBlocks)
	for b := 0; b < numBlocks; b++ {
		blockCh <- b
	}
	close(blockCh)

	smCycles := make([]int64, sms)
	var statsMu sync.Mutex
	var wg sync.WaitGroup

	for sm := 0; sm < hostPar; sm++ {
		wg.Add(1)
		go func(smHome int) {
			defer wg.Done()
			for flat := range blockCh {
				if aborted.Load() {
					continue
				}
				blockIdx := unflatten(flat, cfg.Grid)
				bc := newBlockCtx(d, blockIdx, cfg, cfg.SharedMemBytes, aborted, abortErr)
				bs := runBlock(bc)
				statsMu.Lock()
				// Round-robin blocks over the *simulated* SM count so the
				// simulated time reflects the device, not the host.
				smCycles[flat%sms] += bs.cycles
				stats.ALUOps += bs.alu
				stats.SpecialOps += bs.special
				stats.Branches += bs.branches
				stats.Barriers += bs.barriers
				stats.Atomics += bs.atomics
				stats.GlobalLoads += bs.gLoads
				stats.GlobalStores += bs.gStores
				stats.GlobalTx += bs.gTx
				stats.SharedOps += bs.sAccess
				stats.SharedTx += bs.sTx
				stats.ConstLoads += bs.cLoads
				if bs.divergence {
					stats.Divergence = true
				}
				statsMu.Unlock()
			}
		}(sm)
	}
	wg.Wait()

	var maxSM int64
	for _, c := range smCycles {
		if c > maxSM {
			maxSM = c
		}
	}
	stats.SimCycles = maxSM + launchOverheadCycles
	khz := d.props.ClockRateKHz
	if khz <= 0 {
		khz = 1000000
	}
	stats.SimTime = time.Duration(float64(stats.SimCycles) / float64(khz) * 1e6 * float64(time.Nanosecond))
	stats.WallTime = time.Since(start)
	d.recordLaunch(stats)

	if err := abortErr.get(); err != nil {
		return stats, err
	}
	if stats.Divergence {
		return stats, ErrBarrierDivergence
	}
	return stats, nil
}

// blockResult aggregates the work of one block.
type blockResult struct {
	alu, special, branches, barriers, atomics int64
	gLoads, gStores, gTx                      int64
	sAccess, sTx, cLoads                      int64
	cycles                                    int64
	divergence                                bool
}

func (d *Device) runBlock(bc *blockCtx, cfg LaunchConfig, k KernelFunc, aborted *atomic.Bool, abortErr *onceErr) blockResult {
	threads := cfg.Block.Count()
	warpSize := d.props.WarpSize
	if warpSize <= 0 {
		warpSize = 32
	}
	bc.serial = cfg.NoBarriers

	scr := scratchPool.Get().(*blockScratch)
	if cap(scr.ctxs) < threads {
		scr.ctxs = make([]*ThreadCtx, threads)
	}
	if cap(scr.backing) < threads {
		scr.backing = make([]ThreadCtx, threads)
	}
	ctxs := scr.ctxs[:threads]
	backing := scr.backing[:threads]
	clear(ctxs)
	clear(backing)
	runThread := func(tc *ThreadCtx) {
		defer bc.threadExit()
		defer func() {
			if r := recover(); r != nil {
				abortErr.set(fmt.Errorf("%w: %v", ErrIllegalAccess, r))
				aborted.Store(true)
				bc.abortWake()
			}
		}()
		if err := k(tc); err != nil {
			abortErr.set(err)
			aborted.Store(true)
			bc.abortWake()
		}
	}
	if cfg.NoBarriers {
		// Barrier-free kernels: run the block's threads sequentially on
		// this goroutine. Results are identical because threads cannot
		// interact except through atomics, which remain atomic.
		hintG, hintS := 0, 0
		var slabG []gEvent // event logs for threads 1..n-1, carved per thread
		var slabS []sEvent
		// Pooled slabs may each be handed out at most once per block, or a
		// second draw would alias carves already in use by earlier threads.
		slabGBuf, slabSBuf := scr.slabG, scr.slabS
		var ac allocCache // one goroutine runs the whole block: share the cache
		var order []int
		if cfg.SchedSeed != 0 {
			order = schedOrder(threads, cfg.SchedSeed, uint64(bc.blockIdx.X)|uint64(bc.blockIdx.Y)<<21|uint64(bc.blockIdx.Z)<<42)
		}
		for i := 0; i < threads; i++ {
			if aborted.Load() {
				break
			}
			t := i
			if order != nil {
				t = order[i]
			}
			// backing[t] is freshly zeroed; set only the non-zero fields.
			tc := &backing[t]
			tc.Dev = d
			tc.ThreadIdx = unflatten(t, cfg.Block)
			tc.BlockIdx = bc.blockIdx
			tc.BlockDim = cfg.Block
			tc.GridDim = cfg.Grid
			tc.block = bc
			tc.warp = t / warpSize
			tc.cache = &ac
			// Threads in a block usually perform the same accesses, so the
			// first thread's event counts size the logs of the rest, carved
			// out of one block-wide slab. A thread that overflows its carve
			// reallocates on append, leaving the slab untouched.
			if hintG > 0 {
				if len(slabG) < hintG {
					need := hintG * (threads - i)
					if cap(slabGBuf) >= need {
						slabG = slabGBuf[:need]
					} else {
						slabG = make([]gEvent, need)
						scr.slabG = slabG // keep the fresh slab for reuse
					}
					slabGBuf = nil
				}
				tc.gEvents = slabG[0:0:hintG]
				slabG = slabG[hintG:]
			}
			if hintS > 0 {
				if len(slabS) < hintS {
					need := hintS * (threads - i)
					if cap(slabSBuf) >= need {
						slabS = slabSBuf[:need]
					} else {
						slabS = make([]sEvent, need)
						scr.slabS = slabS
					}
					slabSBuf = nil
				}
				tc.sEvents = slabS[0:0:hintS]
				slabS = slabS[hintS:]
			}
			ctxs[t] = tc
			runThread(tc)
			if i == 0 {
				hintG, hintS = len(tc.gEvents), len(tc.sEvents)
			}
		}
		// Unstarted threads contribute empty stats.
		for t := range ctxs {
			if ctxs[t] == nil {
				tc := &backing[t]
				tc.Dev = d
				tc.block = bc
				tc.warp = t / warpSize
				ctxs[t] = tc
			}
		}
		res := d.collectBlock(bc, ctxs, warpSize)
		scratchPool.Put(scr)
		return res
	}

	var wg sync.WaitGroup
	if cap(scr.caches) < threads {
		scr.caches = make([]allocCache, threads)
	}
	caches := scr.caches[:threads]
	clear(caches)
	for t := 0; t < threads; t++ {
		tc := &backing[t]
		tc.Dev = d
		tc.ThreadIdx = unflatten(t, cfg.Block)
		tc.BlockIdx = bc.blockIdx
		tc.BlockDim = cfg.Block
		tc.GridDim = cfg.Grid
		tc.block = bc
		tc.warp = t / warpSize
		tc.cache = &caches[t]
		ctxs[t] = tc
		wg.Add(1)
		go func(tc *ThreadCtx) {
			defer wg.Done()
			runThread(tc)
		}(tc)
	}
	wg.Wait()
	res := d.collectBlock(bc, ctxs, warpSize)
	scratchPool.Put(scr)
	return res
}

// collectBlock aggregates per-thread statistics into the block result.
func (d *Device) collectBlock(bc *blockCtx, ctxs []*ThreadCtx, warpSize int) blockResult {

	var res blockResult
	for _, tc := range ctxs {
		res.alu += tc.stats.alu
		res.special += tc.stats.special
		res.branches += tc.stats.branches
		res.barriers += tc.stats.barriers
		res.atomics += tc.stats.atomics
		res.gLoads += tc.stats.gLoads
		res.gStores += tc.stats.gStores
		res.sAccess += tc.stats.sAccess
		res.cLoads += tc.stats.cLoads
	}
	res.gTx, res.sTx = aggregateCost(ctxs, warpSize)
	res.divergence = bc.divergence
	res.cycles = blockCycles(d.props, res)
	return res
}

// schedOrder derives a deterministic permutation of [0,n) from the launch
// seed and the block coordinate, via splitmix64-keyed Fisher-Yates. Each
// block gets a different shuffle so inter-block patterns cannot mask an
// intra-block race.
func schedOrder(n int, seed, blockKey uint64) []int {
	s := seed ^ 0x9e3779b97f4a7c15*(blockKey+1)
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// unflatten converts a linear index into a Dim3 coordinate within extent e,
// x fastest-varying as in CUDA.
func unflatten(flat int, e Dim3) Dim3 {
	x := flat % e.X
	y := (flat / e.X) % e.Y
	z := flat / (e.X * e.Y)
	return Dim3{X: x, Y: y, Z: z}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
