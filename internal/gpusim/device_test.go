package gpusim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMallocFreeAccounting(t *testing.T) {
	d := NewDefaultDevice()
	p1, err := d.Malloc(1024)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	p2, err := d.Malloc(2048)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if got := d.UsedBytes(); got != 3072 {
		t.Errorf("UsedBytes = %d, want 3072", got)
	}
	if got := d.AllocCount(); got != 2 {
		t.Errorf("AllocCount = %d, want 2", got)
	}
	if err := d.Free(p1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := d.UsedBytes(); got != 2048 {
		t.Errorf("UsedBytes after free = %d, want 2048", got)
	}
	if err := d.Free(p2); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := d.AllocCount(); got != 0 {
		t.Errorf("AllocCount after frees = %d, want 0", got)
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	d := NewDefaultDevice()
	if err := d.Free(Ptr{}); err != nil {
		t.Errorf("Free(nil) = %v, want nil", err)
	}
}

func TestDoubleFree(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.Malloc(16)
	if err := d.Free(p); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := d.Free(p); !errors.Is(err, ErrInvalidPtr) {
		t.Errorf("double Free = %v, want ErrInvalidPtr", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	props := DefaultProps()
	props.TotalGlobalMem = 1 << 20
	d := NewDevice(props)
	if _, err := d.Malloc(2 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("Malloc over capacity = %v, want ErrOutOfMemory", err)
	}
	// After freeing, the memory is available again.
	p, err := d.Malloc(1 << 20)
	if err != nil {
		t.Fatalf("Malloc at capacity: %v", err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1 << 20); err != nil {
		t.Errorf("Malloc after free: %v", err)
	}
}

func TestNegativeMalloc(t *testing.T) {
	d := NewDefaultDevice()
	if _, err := d.Malloc(-1); err == nil {
		t.Error("Malloc(-1) succeeded, want error")
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	d := NewDefaultDevice()
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	p, err := d.Malloc(len(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyHtoD(p, src); err != nil {
		t.Fatalf("MemcpyHtoD: %v", err)
	}
	dst := make([]byte, len(src))
	if err := d.MemcpyDtoH(dst, p); err != nil {
		t.Fatalf("MemcpyDtoH: %v", err)
	}
	if string(dst) != string(src) {
		t.Errorf("round trip = %v, want %v", dst, src)
	}
}

func TestMemcpyOutOfBounds(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.Malloc(8)
	if err := d.MemcpyHtoD(p, make([]byte, 16)); !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("oversized HtoD = %v, want ErrIllegalAccess", err)
	}
	if err := d.MemcpyHtoD(p.Offset(4), make([]byte, 8)); !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("offset overrun = %v, want ErrIllegalAccess", err)
	}
	if err := d.MemcpyHtoD(p.Offset(-1), make([]byte, 1)); !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("negative offset = %v, want ErrIllegalAccess", err)
	}
}

func TestMemcpyInvalidPtr(t *testing.T) {
	d := NewDefaultDevice()
	bogus := Ptr{alloc: 999}
	if err := d.MemcpyHtoD(bogus, []byte{1}); !errors.Is(err, ErrInvalidPtr) {
		t.Errorf("bogus ptr = %v, want ErrInvalidPtr", err)
	}
}

func TestMemcpyDtoD(t *testing.T) {
	d := NewDefaultDevice()
	a, _ := d.Malloc(8)
	b, _ := d.Malloc(8)
	if err := d.MemcpyHtoD(a, []byte{9, 8, 7, 6, 5, 4, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyDtoD(b, a, 8); err != nil {
		t.Fatalf("MemcpyDtoD: %v", err)
	}
	got := make([]byte, 8)
	if err := d.MemcpyDtoH(got, b); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[7] != 2 {
		t.Errorf("DtoD copy mismatch: %v", got)
	}
}

func TestMemset(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.Malloc(4)
	if err := d.Memset(p, 0xAB, 4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := d.MemcpyDtoH(got, p); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Errorf("byte %d = %#x, want 0xAB", i, b)
		}
	}
}

func TestConstMemory(t *testing.T) {
	d := NewDefaultDevice()
	data := Float32Bytes([]float32{1.5, -2.5})
	if err := d.CopyToConst(0, data); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToConst(d.Props().TotalConstMem-1, []byte{0, 0}); !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("const overflow = %v, want ErrIllegalAccess", err)
	}
	got := BytesFloat32(d.ConstMem()[:8])
	if got[0] != 1.5 || got[1] != -2.5 {
		t.Errorf("const mem = %v", got)
	}
}

func TestReset(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.Malloc(128)
	_ = p
	d.Reset()
	if d.AllocCount() != 0 || d.UsedBytes() != 0 {
		t.Errorf("after Reset: %d allocs, %d bytes", d.AllocCount(), d.UsedBytes())
	}
}

func TestClosedDevice(t *testing.T) {
	d := NewDefaultDevice()
	d.Close()
	if _, err := d.Malloc(1); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("Malloc on closed = %v, want ErrDeviceClosed", err)
	}
}

func TestQueryString(t *testing.T) {
	d := NewDefaultDevice()
	q := d.QueryString()
	for _, want := range []string{"SimGPU", "Computational Capabilities: 3.0", "Warp size: 32"} {
		if !strings.Contains(q, want) {
			t.Errorf("QueryString missing %q:\n%s", want, q)
		}
	}
}

func TestFloat32BytesRoundTrip(t *testing.T) {
	f := func(xs []float32) bool {
		got := BytesFloat32(Float32Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			// Compare bit patterns so NaNs round-trip too.
			if Float32Bytes(xs[i : i+1])[0] != Float32Bytes(got[i : i+1])[0] {
				return false
			}
			a, b := xs[i], got[i]
			if a != b && (a == a || b == b) { // not both NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32BytesRoundTrip(t *testing.T) {
	f := func(xs []int32) bool {
		got := BytesInt32(Int32Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: allocations never alias — writing the full range of one
// allocation never changes the contents of another.
func TestAllocationsDoNotAlias(t *testing.T) {
	f := func(sizes []uint8) bool {
		d := NewDefaultDevice()
		var ptrs []Ptr
		var want [][]byte
		for i, s := range sizes {
			n := int(s)%64 + 1
			p, err := d.Malloc(n)
			if err != nil {
				return false
			}
			fill := make([]byte, n)
			for j := range fill {
				fill[j] = byte(i + 1)
			}
			if err := d.MemcpyHtoD(p, fill); err != nil {
				return false
			}
			ptrs = append(ptrs, p)
			want = append(want, fill)
		}
		for i, p := range ptrs {
			got := make([]byte, len(want[i]))
			if err := d.MemcpyDtoH(got, p); err != nil {
				return false
			}
			for j := range got {
				if got[j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocationsOrdered(t *testing.T) {
	d := NewDefaultDevice()
	for i := 0; i < 5; i++ {
		if _, err := d.Malloc(8); err != nil {
			t.Fatal(err)
		}
	}
	ids := d.Allocations()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not ascending: %v", ids)
		}
	}
}

func TestMallocTypedHelpers(t *testing.T) {
	d := NewDefaultDevice()
	in := []float32{1, 2, 3, 4}
	p, err := d.MallocFloat32(4, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadFloat32(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("elem %d = %v, want %v", i, out[i], in[i])
		}
	}
	ip, err := d.MallocInt32(3, []int32{-1, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	iv, err := d.ReadInt32(ip, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv[0] != -1 || iv[2] != 7 {
		t.Errorf("int read = %v", iv)
	}
}
