package gpusim

import (
	"errors"
	"fmt"
	"testing"
)

// vecAddKernel is the canonical first CUDA kernel of the course.
func vecAddKernel(a, b, c Ptr, n int) KernelFunc {
	return func(tc *ThreadCtx) error {
		i := tc.BlockIdx.X*tc.BlockDim.X + tc.ThreadIdx.X
		tc.CountALU(2)
		if i >= n {
			return nil
		}
		x, err := tc.LoadFloat32(a, i)
		if err != nil {
			return err
		}
		y, err := tc.LoadFloat32(b, i)
		if err != nil {
			return err
		}
		tc.CountALU(1)
		return tc.StoreFloat32(c, i, x+y)
	}
}

func TestLaunchVecAdd(t *testing.T) {
	d := NewDefaultDevice()
	n := 1000
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = float32(2 * i)
	}
	a, _ := d.MallocFloat32(n, av)
	b, _ := d.MallocFloat32(n, bv)
	c, _ := d.Malloc(n * 4)

	cfg := LaunchConfig{Grid: D1((n + 255) / 256), Block: D1(256)}
	stats, err := d.Launch("vecAdd", cfg, vecAddKernel(a, b, c, n))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if stats.Threads != 4*256 {
		t.Errorf("Threads = %d, want %d", stats.Threads, 4*256)
	}
	out, err := d.ReadFloat32(c, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, out[i], float32(3*i))
		}
	}
	if stats.GlobalLoads != int64(2*n) {
		t.Errorf("GlobalLoads = %d, want %d", stats.GlobalLoads, 2*n)
	}
	if stats.GlobalStores != int64(n) {
		t.Errorf("GlobalStores = %d, want %d", stats.GlobalStores, n)
	}
	if stats.SimCycles <= 0 || stats.SimTime <= 0 {
		t.Errorf("no simulated time recorded: %+v", stats)
	}
}

func TestLaunch2DGrid(t *testing.T) {
	d := NewDefaultDevice()
	w, h := 17, 9
	out, _ := d.Malloc(w * h * 4)
	cfg := LaunchConfig{Grid: D2((w+7)/8, (h+7)/8), Block: D2(8, 8)}
	_, err := d.Launch("index2d", cfg, func(tc *ThreadCtx) error {
		x := tc.BlockIdx.X*tc.BlockDim.X + tc.ThreadIdx.X
		y := tc.BlockIdx.Y*tc.BlockDim.Y + tc.ThreadIdx.Y
		if x >= w || y >= h {
			return nil
		}
		return tc.StoreInt32(out, y*w+x, int32(y*1000+x))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if got[y*w+x] != int32(y*1000+x) {
				t.Fatalf("(%d,%d) = %d", x, y, got[y*w+x])
			}
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDefaultDevice()
	nop := func(tc *ThreadCtx) error { return nil }
	cases := []LaunchConfig{
		{Grid: D1(1), Block: D1(0)},
		{Grid: D1(0), Block: D1(32)},
		{Grid: D1(1), Block: D1(2048)},                        // too many threads
		{Grid: D1(1), Block: Dim3{1, 1, 128}},                 // z too large
		{Grid: D1(1), Block: D1(32), SharedMemBytes: 1 << 20}, // too much smem
		{Grid: D1(1), Block: D1(32), SharedMemBytes: -1},
	}
	for i, cfg := range cases {
		if _, err := d.Launch("bad", cfg, nop); !errors.Is(err, ErrInvalidLaunch) {
			t.Errorf("case %d: err = %v, want ErrInvalidLaunch", i, err)
		}
	}
}

func TestSharedMemoryReduction(t *testing.T) {
	d := NewDefaultDevice()
	n := 512
	in := make([]float32, n)
	var want float64
	for i := range in {
		in[i] = float32(i%7) - 3
		want += float64(in[i])
	}
	inP, _ := d.MallocFloat32(n, in)
	outP, _ := d.Malloc(4)

	block := 256
	cfg := LaunchConfig{Grid: D1(n / block / 2), Block: D1(block), SharedMemBytes: block * 4}
	_, err := d.Launch("reduce", cfg, func(tc *ThreadCtx) error {
		t0 := tc.ThreadIdx.X
		start := 2 * tc.BlockIdx.X * tc.BlockDim.X
		x, err := tc.LoadFloat32(inP, start+t0)
		if err != nil {
			return err
		}
		y, err := tc.LoadFloat32(inP, start+t0+tc.BlockDim.X)
		if err != nil {
			return err
		}
		if err := tc.SharedStoreFloat32(t0, x+y); err != nil {
			return err
		}
		for stride := tc.BlockDim.X / 2; stride >= 1; stride /= 2 {
			if err := tc.SyncThreads(); err != nil {
				return err
			}
			if t0 < stride {
				a, _ := tc.SharedLoadFloat32(t0)
				b, _ := tc.SharedLoadFloat32(t0 + stride)
				if err := tc.SharedStoreFloat32(t0, a+b); err != nil {
					return err
				}
			}
		}
		if t0 == 0 {
			v, _ := tc.SharedLoadFloat32(0)
			if _, err := tc.AtomicAddFloat32(outP, 0, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, _ := d.ReadFloat32(outP, 1)
	if float64(got[0]) != want {
		t.Errorf("reduction = %v, want %v", got[0], want)
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(64)}
	_, err := d.Launch("diverge", cfg, func(tc *ThreadCtx) error {
		if tc.ThreadIdx.X < 32 {
			return tc.SyncThreads() // only half the block synchronizes
		}
		return nil
	})
	if !errors.Is(err, ErrBarrierDivergence) {
		t.Errorf("err = %v, want ErrBarrierDivergence", err)
	}
}

func TestKernelErrorAborts(t *testing.T) {
	d := NewDefaultDevice()
	boom := fmt.Errorf("boom")
	cfg := LaunchConfig{Grid: D1(4), Block: D1(64)}
	_, err := d.Launch("err", cfg, func(tc *ThreadCtx) error {
		if tc.GlobalThreadID() == 17 {
			return boom
		}
		return tc.SyncThreads() // others must not deadlock
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestOutOfBoundsLoadAborts(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.Malloc(4)
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32)}
	_, err := d.Launch("oob", cfg, func(tc *ThreadCtx) error {
		_, err := tc.LoadFloat32(p, tc.ThreadIdx.X) // threads 1.. are OOB
		return err
	})
	if !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("err = %v, want ErrIllegalAccess", err)
	}
}

func TestNativePanicBecomesIllegalAccess(t *testing.T) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(8)}
	var arr [2]int
	_, err := d.Launch("panic", cfg, func(tc *ThreadCtx) error {
		// Threads 0-1 write distinct in-range elements; the rest panic
		// with index out of range, which must surface as an illegal
		// memory access.
		arr[tc.ThreadIdx.X] = 1
		return nil
	})
	if !errors.Is(err, ErrIllegalAccess) {
		t.Errorf("err = %v, want ErrIllegalAccess", err)
	}
}

func TestSharedMemoryIsPerBlock(t *testing.T) {
	d := NewDefaultDevice()
	blocks := 8
	out, _ := d.Malloc(blocks * 4)
	cfg := LaunchConfig{Grid: D1(blocks), Block: D1(32), SharedMemBytes: 4}
	_, err := d.Launch("smemiso", cfg, func(tc *ThreadCtx) error {
		if tc.ThreadIdx.X == 0 {
			if err := tc.SharedStoreInt32(0, int32(tc.BlockIdx.X)); err != nil {
				return err
			}
		}
		if err := tc.SyncThreads(); err != nil {
			return err
		}
		if tc.ThreadIdx.X == 31 {
			v, err := tc.SharedLoadInt32(0)
			if err != nil {
				return err
			}
			return tc.StoreInt32(out, tc.BlockIdx.X, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, blocks)
	for b := 0; b < blocks; b++ {
		if got[b] != int32(b) {
			t.Errorf("block %d saw shared value %d", b, got[b])
		}
	}
}

func TestConstMemoryLoadInKernel(t *testing.T) {
	d := NewDefaultDevice()
	if err := d.CopyToConst(0, Float32Bytes([]float32{10, 20, 30, 40})); err != nil {
		t.Fatal(err)
	}
	out, _ := d.Malloc(4 * 4)
	cfg := LaunchConfig{Grid: D1(1), Block: D1(4)}
	_, err := d.Launch("const", cfg, func(tc *ThreadCtx) error {
		v, err := tc.ConstLoadFloat32(tc.ThreadIdx.X)
		if err != nil {
			return err
		}
		return tc.StoreFloat32(out, tc.ThreadIdx.X, v*2)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(out, 4)
	if got[0] != 20 || got[3] != 80 {
		t.Errorf("const kernel = %v", got)
	}
}

func TestLaunchRecorded(t *testing.T) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(1)}
	for i := 0; i < 3; i++ {
		if _, err := d.Launch("nop", cfg, func(tc *ThreadCtx) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.LaunchCount(); got != 3 {
		t.Errorf("LaunchCount = %d, want 3", got)
	}
	if got := len(d.Launches()); got != 3 {
		t.Errorf("len(Launches) = %d, want 3", got)
	}
	d.ClearLaunches()
	if got := len(d.Launches()); got != 0 {
		t.Errorf("after clear len = %d", got)
	}
}

func TestAtomicsContended(t *testing.T) {
	d := NewDefaultDevice()
	ctr, _ := d.Malloc(4)
	cfg := LaunchConfig{Grid: D1(16), Block: D1(64)}
	_, err := d.Launch("atomics", cfg, func(tc *ThreadCtx) error {
		_, err := tc.AtomicAddInt32(ctr, 0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(ctr, 1)
	if got[0] != 16*64 {
		t.Errorf("atomic counter = %d, want %d", got[0], 16*64)
	}
}

func TestAtomicCASAndExch(t *testing.T) {
	d := NewDefaultDevice()
	p, _ := d.MallocInt32(1, []int32{5})
	cfg := LaunchConfig{Grid: D1(1), Block: D1(1)}
	_, err := d.Launch("cas", cfg, func(tc *ThreadCtx) error {
		old, err := tc.AtomicCASInt32(p, 0, 5, 9)
		if err != nil || old != 5 {
			return fmt.Errorf("cas1 old=%d err=%v", old, err)
		}
		old, err = tc.AtomicCASInt32(p, 0, 5, 100)
		if err != nil || old != 9 {
			return fmt.Errorf("cas2 old=%d err=%v", old, err)
		}
		old, err = tc.AtomicExchInt32(p, 0, 42)
		if err != nil || old != 9 {
			return fmt.Errorf("exch old=%d err=%v", old, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(p, 1)
	if got[0] != 42 {
		t.Errorf("final = %d, want 42", got[0])
	}
}

func TestAtomicMinMax(t *testing.T) {
	d := NewDefaultDevice()
	mx, _ := d.MallocInt32(1, []int32{-1 << 30})
	mn, _ := d.MallocInt32(1, []int32{1 << 30})
	cfg := LaunchConfig{Grid: D1(4), Block: D1(64)}
	_, err := d.Launch("minmax", cfg, func(tc *ThreadCtx) error {
		v := int32(tc.GlobalThreadID())
		if _, err := tc.AtomicMaxInt32(mx, 0, v); err != nil {
			return err
		}
		_, err := tc.AtomicMinInt32(mn, 0, v)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	gotMax, _ := d.ReadInt32(mx, 1)
	gotMin, _ := d.ReadInt32(mn, 1)
	if gotMax[0] != 255 || gotMin[0] != 0 {
		t.Errorf("max=%d min=%d, want 255, 0", gotMax[0], gotMin[0])
	}
}

func TestSharedAtomicAdd(t *testing.T) {
	d := NewDefaultDevice()
	out, _ := d.Malloc(4)
	cfg := LaunchConfig{Grid: D1(1), Block: D1(128), SharedMemBytes: 4}
	_, err := d.Launch("satomic", cfg, func(tc *ThreadCtx) error {
		if _, err := tc.SharedAtomicAddInt32(0, 1); err != nil {
			return err
		}
		if err := tc.SyncThreads(); err != nil {
			return err
		}
		if tc.ThreadIdx.X == 0 {
			v, _ := tc.SharedLoadInt32(0)
			return tc.StoreInt32(out, 0, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, 1)
	if got[0] != 128 {
		t.Errorf("shared atomic sum = %d, want 128", got[0])
	}
}

func TestUnflatten(t *testing.T) {
	e := Dim3{4, 3, 2}
	seen := map[Dim3]bool{}
	for f := 0; f < e.Count(); f++ {
		c := unflatten(f, e)
		if c.X < 0 || c.X >= 4 || c.Y < 0 || c.Y >= 3 || c.Z < 0 || c.Z >= 2 {
			t.Fatalf("coord out of range: %v", c)
		}
		if seen[c] {
			t.Fatalf("duplicate coord %v", c)
		}
		seen[c] = true
	}
	if len(seen) != e.Count() {
		t.Fatalf("covered %d of %d", len(seen), e.Count())
	}
}

func TestGlobalThreadIDsUnique(t *testing.T) {
	d := NewDefaultDevice()
	total := 6 * 50
	out, _ := d.Malloc(total * 4)
	cfg := LaunchConfig{Grid: Dim3{3, 2, 1}, Block: Dim3{10, 5, 1}}
	_, err := d.Launch("ids", cfg, func(tc *ThreadCtx) error {
		return tc.StoreInt32(out, tc.GlobalThreadID(), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, total)
	for i, v := range got {
		if v != 1 {
			t.Fatalf("slot %d not written (=%d): thread ids not a bijection", i, v)
		}
	}
}
