package gpusim

import "testing"

func BenchmarkMemcpyHtoD(b *testing.B) {
	d := NewDefaultDevice()
	data := make([]byte, 1<<20)
	p, _ := d.Malloc(len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.MemcpyHtoD(p, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFree(b *testing.B) {
	d := NewDefaultDevice()
	for i := 0; i < b.N; i++ {
		p, err := d.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		_ = d.Free(p)
	}
}

func BenchmarkLaunchOverhead(b *testing.B) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(1)}
	nop := func(tc *ThreadCtx) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch("nop", cfg, nop); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVecAdd64K(b *testing.B) {
	d := NewDefaultDevice()
	n := 1 << 16
	a, _ := d.Malloc(n * 4)
	bb, _ := d.Malloc(n * 4)
	c, _ := d.Malloc(n * 4)
	cfg := LaunchConfig{Grid: D1(n / 256), Block: D1(256)}
	k := vecAddKernel(a, bb, c, n)
	b.SetBytes(int64(n * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch("vecAdd", cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrierHeavyKernel(b *testing.B) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(4), Block: D1(256), SharedMemBytes: 1024}
	k := func(tc *ThreadCtx) error {
		for s := 0; s < 16; s++ {
			if err := tc.SyncThreads(); err != nil {
				return err
			}
		}
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch("barriers", cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtomicContention(b *testing.B) {
	d := NewDefaultDevice()
	ctr, _ := d.Malloc(4)
	cfg := LaunchConfig{Grid: D1(8), Block: D1(128)}
	k := func(tc *ThreadCtx) error {
		_, err := tc.AtomicAddInt32(ctr, 0, 1)
		return err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch("atomics", cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiledVsNaiveMatMul(b *testing.B) {
	n := 64
	run := func(b *testing.B, tiled bool) {
		d := NewDefaultDevice()
		a, _ := d.Malloc(n * n * 4)
		bb, _ := d.Malloc(n * n * 4)
		c, _ := d.Malloc(n * n * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if tiled {
				_, err = matMulTiled(d, a, bb, c, n, 16)
			} else {
				_, err = matMulNaive(d, a, bb, c, n)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, false) })
	b.Run("tiled", func(b *testing.B) { run(b, true) })
}
