package gpusim

// Cost-model constants, in device cycles. The absolute values are loosely
// based on Kepler-class latencies; what matters for the course labs is the
// ratio between coalesced/uncoalesced global traffic and shared-memory
// reuse, which is what makes tiled matrix multiply beat the basic version
// and coalesced access beat strided access by roughly the factors students
// observe on real hardware.
const (
	latGlobalTx          = 400 // one 128-byte global memory transaction
	latSharedTx          = 4   // one conflict-free shared-memory access
	latBarrier           = 32  // __syncthreads
	latAtomic            = 120 // global atomic
	latSpecial           = 16  // SFU op (sqrt, exp, ...)
	launchOverheadCycles = 4000
	segmentBytes         = 128 // coalescing segment
	numBanks             = 32  // shared-memory banks
	bankWidthBytes       = 4
)

// Memory-access events are recorded lock-free into per-thread logs and
// aggregated once per block under the warp-synchronous approximation: the
// k-th global (resp. shared) access of each thread in a warp is treated
// as issuing together, so the block's transaction count is the number of
// distinct 128-byte segments (resp. the per-bank conflict degree) among
// each warp's k-th accesses.

// gEvent is one global-memory access by one thread.
type gEvent struct {
	alloc        uint64
	segLo, segHi int32
}

// sEvent is one shared-memory access by one thread.
type sEvent struct {
	word int32
}

type gKey struct {
	warp  int32
	seq   int32
	alloc uint64
	seg   int32
}

type sKey struct {
	warp int32
	seq  int32
}

// aggregateCost merges the per-thread event logs of one block into
// transaction counts.
func aggregateCost(ctxs []*ThreadCtx, warpSize int) (globalTx, sharedTx int64) {
	// Global: count distinct (warp, seq, alloc, segment) tuples.
	gSeen := make(map[gKey]struct{}, 64)
	for _, tc := range ctxs {
		warp := int32(tc.warp)
		for seq, ev := range tc.gEvents {
			for s := ev.segLo; s <= ev.segHi; s++ {
				gSeen[gKey{warp: warp, seq: int32(seq), alloc: ev.alloc, seg: s}] = struct{}{}
			}
		}
	}
	globalTx = int64(len(gSeen))

	// Shared: for each (warp, seq) find the max number of distinct words
	// mapped to the same bank (the conflict degree; a broadcast of one
	// word costs 1).
	type bankWords struct {
		words [numBanks]map[int32]struct{}
	}
	sAcc := make(map[sKey]*bankWords, 16)
	for _, tc := range ctxs {
		warp := int32(tc.warp)
		for seq, ev := range tc.sEvents {
			k := sKey{warp: warp, seq: int32(seq)}
			bw, ok := sAcc[k]
			if !ok {
				bw = &bankWords{}
				sAcc[k] = bw
			}
			bank := ev.word % numBanks
			if bank < 0 {
				bank += numBanks
			}
			if bw.words[bank] == nil {
				bw.words[bank] = make(map[int32]struct{}, 1)
			}
			bw.words[bank][ev.word] = struct{}{}
		}
	}
	for _, bw := range sAcc {
		degree := 1
		for _, words := range bw.words {
			if len(words) > degree {
				degree = len(words)
			}
		}
		sharedTx += int64(degree)
	}
	return globalTx, sharedTx
}

// blockCycles estimates the cycles one block occupies its SM, assuming the
// SM overlaps compute and memory pipelines (the slower one dominates) and
// pays barrier and atomic latencies serially.
func blockCycles(p DeviceProps, r blockResult) int64 {
	cores := int64(p.CoresPerSM)
	if cores <= 0 {
		cores = 128
	}
	compute := (r.alu + r.special*latSpecial + r.branches) / cores
	memory := r.gTx*latGlobalTx/8 + r.sTx*latSharedTx + r.cLoads/4
	serial := r.barriers/int64(max(1, int(p.WarpSize)))*latBarrier + r.atomics*latAtomic/4
	busy := compute
	if memory > busy {
		busy = memory
	}
	return busy + serial + 200 // fixed block-dispatch overhead
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
