package gpusim

// Cost-model constants, in device cycles. The absolute values are loosely
// based on Kepler-class latencies; what matters for the course labs is the
// ratio between coalesced/uncoalesced global traffic and shared-memory
// reuse, which is what makes tiled matrix multiply beat the basic version
// and coalesced access beat strided access by roughly the factors students
// observe on real hardware.
const (
	latGlobalTx          = 400 // one 128-byte global memory transaction
	latSharedTx          = 4   // one conflict-free shared-memory access
	latBarrier           = 32  // __syncthreads
	latAtomic            = 120 // global atomic
	latSpecial           = 16  // SFU op (sqrt, exp, ...)
	launchOverheadCycles = 4000
	segmentBytes         = 128 // coalescing segment
	numBanks             = 32  // shared-memory banks
	bankWidthBytes       = 4
)

// CostModel exposes the simulator's cost-model constants to tooling that
// wants its advice to match what the simulator charges — kernelcheck's
// performance advisories cite these numbers so a student sees the same
// ratios in the diagnostic and in the lab's timing output.
type CostModel struct {
	LatGlobalTx    int // cycles per 128-byte global transaction
	LatSharedTx    int // cycles per conflict-free shared access
	LatBarrier     int // cycles per __syncthreads
	SegmentBytes   int // global coalescing segment size
	NumBanks       int // shared-memory banks
	BankWidthBytes int // bytes per bank word
}

// CostParams returns the constants the cost model charges with.
func CostParams() CostModel {
	return CostModel{
		LatGlobalTx:    latGlobalTx,
		LatSharedTx:    latSharedTx,
		LatBarrier:     latBarrier,
		SegmentBytes:   segmentBytes,
		NumBanks:       numBanks,
		BankWidthBytes: bankWidthBytes,
	}
}

// Memory-access events are recorded lock-free into per-thread logs and
// aggregated once per block under the warp-synchronous approximation: the
// k-th global (resp. shared) access of each thread in a warp is treated
// as issuing together, so the block's transaction count is the number of
// distinct 128-byte segments (resp. the per-bank conflict degree) among
// each warp's k-th accesses.

// gEvent is one global-memory access by one thread.
type gEvent struct {
	alloc        uint64
	segLo, segHi int32
}

// sEvent is one shared-memory access by one thread.
type sEvent struct {
	word int32
}

type gSeg struct {
	alloc uint64
	seg   int32
}

// aggregateCost merges the per-thread event logs of one block into
// transaction counts. The tuple spaces are partitioned by (warp, seq), so
// distinct counts are accumulated warp by warp, access slot by access
// slot, with small reused slices instead of maps: a warp holds at most 32
// threads, so linear-scan dedup beats hashing and allocates nothing.
func aggregateCost(ctxs []*ThreadCtx, warpSize int) (globalTx, sharedTx int64) {
	// ctxs is ordered by flattened thread index and runBlock assigns
	// tc.warp = t/warpSize, so each warp is a contiguous run of ctxs —
	// slice it directly instead of regrouping into per-warp slices.

	// Global: count distinct (warp, seq, alloc, segment) tuples — i.e. for
	// each warp's k-th access slot, the distinct (alloc, segment) pairs.
	var segBuf [64]gSeg
	segs := segBuf[:0]
	// Shared: for each (warp, seq), the max number of distinct words mapped
	// to the same bank (the conflict degree; a broadcast of one word costs 1).
	var wordBuf [numBanks]int32
	words := wordBuf[:0]

	for base := 0; base < len(ctxs); base += warpSize {
		end := base + warpSize
		if end > len(ctxs) {
			end = len(ctxs)
		}
		wts := ctxs[base:end]
		maxG, maxS := 0, 0
		for _, tc := range wts {
			if len(tc.gEvents) > maxG {
				maxG = len(tc.gEvents)
			}
			if len(tc.sEvents) > maxS {
				maxS = len(tc.sEvents)
			}
		}
		for seq := 0; seq < maxG; seq++ {
			segs = segs[:0]
			for _, tc := range wts {
				if seq >= len(tc.gEvents) {
					continue
				}
				ev := tc.gEvents[seq]
				for s := ev.segLo; s <= ev.segHi; s++ {
					key := gSeg{alloc: ev.alloc, seg: s}
					seen := false
					for _, e := range segs {
						if e == key {
							seen = true
							break
						}
					}
					if !seen {
						segs = append(segs, key)
					}
				}
			}
			globalTx += int64(len(segs))
		}
		for seq := 0; seq < maxS; seq++ {
			words = words[:0]
			any := false
			for _, tc := range wts {
				if seq >= len(tc.sEvents) {
					continue
				}
				any = true
				w := tc.sEvents[seq].word
				seen := false
				for _, x := range words {
					if x == w {
						seen = true
						break
					}
				}
				if !seen {
					words = append(words, w)
				}
			}
			if !any {
				continue
			}
			var perBank [numBanks]int
			degree := 1
			for _, w := range words {
				bank := w % numBanks
				if bank < 0 {
					bank += numBanks
				}
				perBank[bank]++
				if perBank[bank] > degree {
					degree = perBank[bank]
				}
			}
			sharedTx += int64(degree)
		}
	}
	return globalTx, sharedTx
}

// blockCycles estimates the cycles one block occupies its SM, assuming the
// SM overlaps compute and memory pipelines (the slower one dominates) and
// pays barrier and atomic latencies serially.
func blockCycles(p DeviceProps, r blockResult) int64 {
	cores := int64(p.CoresPerSM)
	if cores <= 0 {
		cores = 128
	}
	compute := (r.alu + r.special*latSpecial + r.branches) / cores
	memory := r.gTx*latGlobalTx/8 + r.sTx*latSharedTx + r.cLoads/4
	serial := r.barriers/int64(max(1, int(p.WarpSize)))*latBarrier + r.atomics*latAtomic/4
	busy := compute
	if memory > busy {
		busy = memory
	}
	return busy + serial + 200 // fixed block-dispatch overhead
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
