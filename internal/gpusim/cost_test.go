package gpusim

import "testing"

// The cost model must preserve the performance relationships the course
// teaches: coalesced beats strided global access, and shared-memory tiling
// beats repeated global loads.

func TestCoalescedBeatsStrided(t *testing.T) {
	d := NewDefaultDevice()
	n := 32 * 64
	in, _ := d.Malloc(n * 4)
	out, _ := d.Malloc(n * 4)
	cfg := LaunchConfig{Grid: D1(n / 256), Block: D1(256)}

	coalesced, err := d.Launch("coalesced", cfg, func(tc *ThreadCtx) error {
		i := tc.GlobalThreadID()
		v, err := tc.LoadFloat32(in, i)
		if err != nil {
			return err
		}
		return tc.StoreFloat32(out, i, v)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stride-32 access: each warp touches 32 distinct 128B segments.
	strided, err := d.Launch("strided", cfg, func(tc *ThreadCtx) error {
		i := tc.GlobalThreadID()
		j := (i*32 + i/(n/32)) % n
		v, err := tc.LoadFloat32(in, j)
		if err != nil {
			return err
		}
		return tc.StoreFloat32(out, j, v)
	})
	if err != nil {
		t.Fatal(err)
	}

	if coalesced.GlobalTx >= strided.GlobalTx {
		t.Errorf("coalesced tx %d >= strided tx %d", coalesced.GlobalTx, strided.GlobalTx)
	}
	if coalesced.SimCycles >= strided.SimCycles {
		t.Errorf("coalesced cycles %d >= strided cycles %d", coalesced.SimCycles, strided.SimCycles)
	}
	// The factor should be large: a fully-strided warp makes ~32x the
	// transactions of a coalesced one.
	if strided.GlobalTx < 8*coalesced.GlobalTx {
		t.Errorf("strided/coalesced tx ratio = %.1f, want >= 8",
			float64(strided.GlobalTx)/float64(coalesced.GlobalTx))
	}
}

func matMulNaive(d *Device, a, b, c Ptr, n int) (*LaunchStats, error) {
	cfg := LaunchConfig{Grid: D2((n+15)/16, (n+15)/16), Block: D2(16, 16)}
	return d.Launch("mmNaive", cfg, func(tc *ThreadCtx) error {
		col := tc.BlockIdx.X*tc.BlockDim.X + tc.ThreadIdx.X
		row := tc.BlockIdx.Y*tc.BlockDim.Y + tc.ThreadIdx.Y
		if row >= n || col >= n {
			return nil
		}
		var sum float32
		for k := 0; k < n; k++ {
			av, err := tc.LoadFloat32(a, row*n+k)
			if err != nil {
				return err
			}
			bv, err := tc.LoadFloat32(b, k*n+col)
			if err != nil {
				return err
			}
			sum += av * bv
			tc.CountALU(2)
		}
		return tc.StoreFloat32(c, row*n+col, sum)
	})
}

func matMulTiled(d *Device, a, b, c Ptr, n, tile int) (*LaunchStats, error) {
	cfg := LaunchConfig{
		Grid:           D2((n+tile-1)/tile, (n+tile-1)/tile),
		Block:          D2(tile, tile),
		SharedMemBytes: 2 * tile * tile * 4,
	}
	return d.Launch("mmTiled", cfg, func(tc *ThreadCtx) error {
		tx, ty := tc.ThreadIdx.X, tc.ThreadIdx.Y
		col := tc.BlockIdx.X*tile + tx
		row := tc.BlockIdx.Y*tile + ty
		var sum float32
		tiles := (n + tile - 1) / tile
		for m := 0; m < tiles; m++ {
			var av, bv float32
			if row < n && m*tile+tx < n {
				v, err := tc.LoadFloat32(a, row*n+m*tile+tx)
				if err != nil {
					return err
				}
				av = v
			}
			if col < n && m*tile+ty < n {
				v, err := tc.LoadFloat32(b, (m*tile+ty)*n+col)
				if err != nil {
					return err
				}
				bv = v
			}
			if err := tc.SharedStoreFloat32(ty*tile+tx, av); err != nil {
				return err
			}
			if err := tc.SharedStoreFloat32(tile*tile+ty*tile+tx, bv); err != nil {
				return err
			}
			if err := tc.SyncThreads(); err != nil {
				return err
			}
			for k := 0; k < tile; k++ {
				x, _ := tc.SharedLoadFloat32(ty*tile + k)
				y, _ := tc.SharedLoadFloat32(tile*tile + k*tile + tx)
				sum += x * y
				tc.CountALU(2)
			}
			if err := tc.SyncThreads(); err != nil {
				return err
			}
		}
		if row < n && col < n {
			return tc.StoreFloat32(c, row*n+col, sum)
		}
		return nil
	})
}

func TestTiledMatMulBeatsNaive(t *testing.T) {
	d := NewDefaultDevice()
	n := 64
	av := make([]float32, n*n)
	bv := make([]float32, n*n)
	for i := range av {
		av[i] = float32(i%5) * 0.5
		bv[i] = float32(i%3) - 1
	}
	a, _ := d.MallocFloat32(n*n, av)
	b, _ := d.MallocFloat32(n*n, bv)
	c1, _ := d.Malloc(n * n * 4)
	c2, _ := d.Malloc(n * n * 4)

	naive, err := matMulNaive(d, a, b, c1, n)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := matMulTiled(d, a, b, c2, n, 16)
	if err != nil {
		t.Fatal(err)
	}

	r1, _ := d.ReadFloat32(c1, n*n)
	r2, _ := d.ReadFloat32(c2, n*n)
	for i := range r1 {
		diff := r1[i] - r2[i]
		if diff < -1e-3 || diff > 1e-3 {
			t.Fatalf("results differ at %d: %v vs %v", i, r1[i], r2[i])
		}
	}

	if tiled.GlobalTx >= naive.GlobalTx {
		t.Errorf("tiled tx %d >= naive tx %d", tiled.GlobalTx, naive.GlobalTx)
	}
	if tiled.SimCycles >= naive.SimCycles {
		t.Errorf("tiled cycles %d >= naive cycles %d", tiled.SimCycles, naive.SimCycles)
	}
	t.Logf("naive: tx=%d cycles=%d; tiled: tx=%d cycles=%d (%.1fx)",
		naive.GlobalTx, naive.SimCycles, tiled.GlobalTx, tiled.SimCycles,
		float64(naive.SimCycles)/float64(tiled.SimCycles))
}

func TestBankConflictCounted(t *testing.T) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32), SharedMemBytes: 32 * 32 * 4}

	noConflict, err := d.Launch("noConflict", cfg, func(tc *ThreadCtx) error {
		return tc.SharedStoreFloat32(tc.ThreadIdx.X, 1) // one word per bank
	})
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := d.Launch("conflict", cfg, func(tc *ThreadCtx) error {
		return tc.SharedStoreFloat32(tc.ThreadIdx.X*32, 1) // all in bank 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if noConflict.SharedTx >= conflict.SharedTx {
		t.Errorf("no-conflict tx %d >= conflict tx %d", noConflict.SharedTx, conflict.SharedTx)
	}
	if conflict.SharedTx != 32 {
		t.Errorf("32-way conflict tx = %d, want 32", conflict.SharedTx)
	}
	if noConflict.SharedTx != 1 {
		t.Errorf("conflict-free tx = %d, want 1", noConflict.SharedTx)
	}
}

func TestBroadcastIsNotConflict(t *testing.T) {
	d := NewDefaultDevice()
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32), SharedMemBytes: 4}
	s, err := d.Launch("broadcast", cfg, func(tc *ThreadCtx) error {
		_, err := tc.SharedLoadFloat32(0) // every thread reads the same word
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.SharedTx != 1 {
		t.Errorf("broadcast tx = %d, want 1", s.SharedTx)
	}
}

// The cost model must be deterministic: identical launches report
// identical counters and simulated cycles regardless of host scheduling.
func TestCostModelDeterministic(t *testing.T) {
	run := func() *LaunchStats {
		d := NewDefaultDevice()
		n := 64
		a, _ := d.Malloc(n * n * 4)
		b, _ := d.Malloc(n * n * 4)
		c, _ := d.Malloc(n * n * 4)
		s, err := matMulTiled(d, a, b, c, n, 16)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	first := run()
	for i := 0; i < 3; i++ {
		s := run()
		if s.SimCycles != first.SimCycles || s.GlobalTx != first.GlobalTx ||
			s.SharedTx != first.SharedTx || s.ALUOps != first.ALUOps ||
			s.Barriers != first.Barriers {
			t.Fatalf("run %d differs: %+v vs %+v", i, s, first)
		}
	}
}

func TestMoreSMsFaster(t *testing.T) {
	mk := func(sms int) *LaunchStats {
		props := DefaultProps()
		props.MultiprocessorCount = sms
		d := NewDevice(props)
		n := 1 << 14
		in, _ := d.Malloc(n * 4)
		out, _ := d.Malloc(n * 4)
		cfg := LaunchConfig{Grid: D1(n / 256), Block: D1(256)}
		s, err := d.Launch("copy", cfg, func(tc *ThreadCtx) error {
			i := tc.GlobalThreadID()
			v, err := tc.LoadFloat32(in, i)
			if err != nil {
				return err
			}
			tc.CountALU(64)
			return tc.StoreFloat32(out, i, v)
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	one := mk(1)
	eight := mk(8)
	if eight.SimCycles >= one.SimCycles {
		t.Errorf("8 SMs (%d cycles) not faster than 1 SM (%d cycles)",
			eight.SimCycles, one.SimCycles)
	}
}
