package gpusim

import "math"

// Host-side typed conversion helpers between Go slices and the raw byte
// representation the device stores (little-endian, matching CUDA's memory
// layout for float/int on x86 hosts).

// Float32Bytes encodes a []float32 as device bytes.
func Float32Bytes(xs []float32) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		putLeU32(b[i*4:], math.Float32bits(x))
	}
	return b
}

// BytesFloat32 decodes device bytes into a []float32.
func BytesFloat32(b []byte) []float32 {
	xs := make([]float32, len(b)/4)
	for i := range xs {
		xs[i] = math.Float32frombits(leU32(b[i*4:]))
	}
	return xs
}

// Int32Bytes encodes a []int32 as device bytes.
func Int32Bytes(xs []int32) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		putLeU32(b[i*4:], uint32(x))
	}
	return b
}

// BytesInt32 decodes device bytes into a []int32.
func BytesInt32(b []byte) []int32 {
	xs := make([]int32, len(b)/4)
	for i := range xs {
		xs[i] = int32(leU32(b[i*4:]))
	}
	return xs
}

// MallocFloat32 allocates device memory for n float32 elements and copies
// src (which may be shorter than n) into it.
func (d *Device) MallocFloat32(n int, src []float32) (Ptr, error) {
	p, err := d.Malloc(n * 4)
	if err != nil {
		return Ptr{}, err
	}
	if len(src) > 0 {
		if err := d.MemcpyHtoD(p, Float32Bytes(src)); err != nil {
			return Ptr{}, err
		}
	}
	return p, nil
}

// MallocInt32 allocates device memory for n int32 elements and copies src
// into it.
func (d *Device) MallocInt32(n int, src []int32) (Ptr, error) {
	p, err := d.Malloc(n * 4)
	if err != nil {
		return Ptr{}, err
	}
	if len(src) > 0 {
		if err := d.MemcpyHtoD(p, Int32Bytes(src)); err != nil {
			return Ptr{}, err
		}
	}
	return p, nil
}

// ReadFloat32 copies n float32 elements from device memory to the host.
func (d *Device) ReadFloat32(p Ptr, n int) ([]float32, error) {
	b := make([]byte, n*4)
	if err := d.MemcpyDtoH(b, p); err != nil {
		return nil, err
	}
	return BytesFloat32(b), nil
}

// ReadInt32 copies n int32 elements from device memory to the host.
func (d *Device) ReadInt32(p Ptr, n int) ([]int32, error) {
	b := make([]byte, n*4)
	if err := d.MemcpyDtoH(b, p); err != nil {
		return nil, err
	}
	return BytesInt32(b), nil
}
