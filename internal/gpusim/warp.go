package gpusim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Warp-level launch path: a WarpKernelFunc executes a whole warp of
// threads in lockstep from a single goroutine, decoding its program once
// per warp instead of once per thread. The simulator keeps the exact same
// observable model as the per-thread path — every memory access still goes
// through the owning lane's ThreadCtx (so the warp-synchronous coalescing
// model in cost.go sees identical per-thread event logs), and the block
// barrier is the same counter barrier, reached through a non-blocking
// arrive/wait split so a warp whose lanes diverge around a __syncthreads
// can keep executing its other lanes.

// WarpKernelFunc executes one warp of a kernel. Lanes[i] is the ThreadCtx
// of the warp's i-th live thread (ascending flat thread order; the last
// warp of a block may be partial). The function owns lane scheduling: it
// must route every memory access through the owning lane's ThreadCtx, call
// ExitLanes as lanes retire, and use the Sync* methods for barriers.
// Returning a non-nil error aborts the launch.
type WarpKernelFunc func(wc *WarpCtx) error

// WarpCtx is the execution context of one warp: its lane ThreadCtxs plus
// the barrier operations a lockstep executor needs.
type WarpCtx struct {
	Lanes []*ThreadCtx // live lanes, ascending thread order

	block  *blockCtx
	exited int
}

// SyncArrive registers n lanes at the block barrier without blocking. It
// returns the generation token those lanes wait on, or released=true when
// their arrival completed the barrier (every live thread of the block had
// arrived) and execution may continue past it immediately.
func (wc *WarpCtx) SyncArrive(n int) (gen int, released bool, err error) {
	return wc.block.warpArrive(n)
}

// SyncPoll reports whether barrier generation gen has released, returning
// the same error a released waiter would observe (abort or divergence).
func (wc *WarpCtx) SyncPoll(gen int) (bool, error) {
	return wc.block.warpPoll(gen)
}

// SyncWait blocks until barrier generation gen releases; it is the warp
// executor's last resort when every strand of the warp is parked at the
// barrier and progress depends on other warps (or an abort).
func (wc *WarpCtx) SyncWait(gen int) error {
	return wc.block.warpWait(gen)
}

// ExitLanes retires n of the warp's lanes from the block's barrier
// participant set, with the same divergence detection as a per-thread
// exit: lanes exiting while others wait at a barrier flag ErrBarrierDivergence.
func (wc *WarpCtx) ExitLanes(n int) {
	wc.exited += n
	wc.block.threadExitN(n)
}

// exitRemaining retires every lane the kernel did not exit itself — the
// error and panic paths, where the executor unwound without unwinding its
// lane bookkeeping.
func (wc *WarpCtx) exitRemaining() {
	if r := len(wc.Lanes) - wc.exited; r > 0 {
		wc.exited = len(wc.Lanes)
		wc.block.threadExitN(r)
	}
}

// warpArrive is barrier()'s arrival half for n lockstep lanes: it never
// blocks, and like the per-thread barrier the arrival that completes the
// set releases everyone without a divergence check.
func (bc *blockCtx) warpArrive(n int) (gen int, released bool, err error) {
	if bc.serial {
		return 0, false, fmt.Errorf("%w: SyncThreads called in a launch declared NoBarriers",
			ErrInvalidLaunch)
	}
	if bc.aborted.Load() {
		return 0, false, bc.abortErr.get()
	}
	bc.mu.Lock()
	gen = bc.generation
	bc.arrived += n
	if bc.arrived == bc.participants {
		bc.arrived = 0
		bc.generation++
		bc.cond.Broadcast()
		bc.mu.Unlock()
		return gen, true, nil
	}
	bc.mu.Unlock()
	return gen, false, nil
}

// warpPoll is the non-blocking half of barrier()'s wait: released waiters
// observe abort first, then divergence, exactly like a woken cond waiter.
func (bc *blockCtx) warpPoll(gen int) (bool, error) {
	bc.mu.Lock()
	released := gen != bc.generation
	diverged := bc.divergence
	bc.mu.Unlock()
	if bc.aborted.Load() {
		return true, bc.abortErr.get()
	}
	if !released {
		return false, nil
	}
	if diverged {
		return true, ErrBarrierDivergence
	}
	return true, nil
}

// warpWait is barrier()'s blocking wait for lanes that already arrived via
// warpArrive.
func (bc *blockCtx) warpWait(gen int) error {
	bc.mu.Lock()
	for gen == bc.generation && !bc.aborted.Load() {
		bc.cond.Wait()
	}
	diverged := bc.divergence
	bc.mu.Unlock()
	if bc.aborted.Load() {
		return bc.abortErr.get()
	}
	if diverged {
		return ErrBarrierDivergence
	}
	return nil
}

// threadExitN retires n threads at once. Equivalent to n threadExit calls:
// the waiters-present check can only complete the barrier on the last
// decrement, because exiting threads are never in the arrived count.
func (bc *blockCtx) threadExitN(n int) {
	if n == 0 {
		return
	}
	if bc.serial {
		bc.participants -= n
		return
	}
	bc.mu.Lock()
	bc.participants -= n
	if bc.arrived > 0 {
		bc.divergence = true
		if bc.arrived == bc.participants {
			bc.arrived = 0
			bc.generation++
			bc.cond.Broadcast()
		}
	}
	bc.mu.Unlock()
}

// LaunchWarp executes kernel wk over the configured grid with warp-level
// granularity: one WarpKernelFunc invocation per warp instead of one
// KernelFunc per thread. Scheduling, cost accounting, abort semantics, and
// returned statistics are identical to Launch.
func (d *Device) LaunchWarp(name string, cfg LaunchConfig, wk WarpKernelFunc) (*LaunchStats, error) {
	var aborted atomic.Bool
	abortErr := &onceErr{}
	return d.launchRun(name, cfg, &aborted, abortErr, func(bc *blockCtx) blockResult {
		return d.runBlockWarp(bc, cfg, wk, &aborted, abortErr)
	})
}

func (d *Device) runBlockWarp(bcx *blockCtx, cfg LaunchConfig, wk WarpKernelFunc, aborted *atomic.Bool, abortErr *onceErr) blockResult {
	threads := cfg.Block.Count()
	warpSize := d.props.WarpSize
	if warpSize <= 0 {
		warpSize = 32
	}
	nWarps := (threads + warpSize - 1) / warpSize
	bcx.serial = cfg.NoBarriers

	scr := scratchPool.Get().(*blockScratch)
	if cap(scr.ctxs) < threads {
		scr.ctxs = make([]*ThreadCtx, threads)
	}
	if cap(scr.backing) < threads {
		scr.backing = make([]ThreadCtx, threads)
	}
	ctxs := scr.ctxs[:threads]
	backing := scr.backing[:threads]
	clear(ctxs)
	if cfg.NoBarriers {
		// The serial path carves per-thread event logs out of a shared slab
		// below; a recycled slice from a prior launch could alias the slab
		// region about to be re-carved, so drop everything.
		clear(backing)
	} else {
		// Reset the ThreadCtx backing while keeping each slot's event-log
		// capacity: the concurrent path has no slab carving (warps run in
		// parallel, so there is no first-warp hint to learn), and recycling
		// the per-thread event slices across launches is what keeps the
		// steady-state warp launch allocation-free.
		for i := range backing {
			g, s := backing[i].gEvents[:0], backing[i].sEvents[:0]
			backing[i] = ThreadCtx{}
			backing[i].gEvents, backing[i].sEvents = g, s
		}
	}
	initCtx := func(t int, cache *allocCache) *ThreadCtx {
		tc := &backing[t]
		tc.Dev = d
		tc.ThreadIdx = unflatten(t, cfg.Block)
		tc.BlockIdx = bcx.blockIdx
		tc.BlockDim = cfg.Block
		tc.GridDim = cfg.Grid
		tc.block = bcx
		tc.warp = t / warpSize
		tc.cache = cache
		ctxs[t] = tc
		return tc
	}
	runWarp := func(wc *WarpCtx) {
		defer wc.exitRemaining()
		defer func() {
			if r := recover(); r != nil {
				abortErr.set(fmt.Errorf("%w: %v", ErrIllegalAccess, r))
				aborted.Store(true)
				bcx.abortWake()
			}
		}()
		if err := wk(wc); err != nil {
			abortErr.set(err)
			aborted.Store(true)
			bcx.abortWake()
		}
	}
	if cfg.NoBarriers {
		// Barrier-free kernels: warps run sequentially on this goroutine,
		// sharing one access cache, with the same event-slab carving as the
		// per-thread serial path (hints learned from the first warp).
		hintG, hintS := 0, 0
		var slabG []gEvent
		var slabS []sEvent
		slabGBuf, slabSBuf := scr.slabG, scr.slabS
		var ac allocCache
		for w := 0; w < nWarps; w++ {
			if aborted.Load() {
				break
			}
			lo := w * warpSize
			hi := min(lo+warpSize, threads)
			wc := &WarpCtx{block: bcx}
			for t := lo; t < hi; t++ {
				tc := initCtx(t, &ac)
				if hintG > 0 {
					if len(slabG) < hintG {
						need := hintG * (threads - t)
						if cap(slabGBuf) >= need {
							slabG = slabGBuf[:need]
						} else {
							slabG = make([]gEvent, need)
							scr.slabG = slabG
						}
						slabGBuf = nil
					}
					tc.gEvents = slabG[0:0:hintG]
					slabG = slabG[hintG:]
				}
				if hintS > 0 {
					if len(slabS) < hintS {
						need := hintS * (threads - t)
						if cap(slabSBuf) >= need {
							slabS = slabSBuf[:need]
						} else {
							slabS = make([]sEvent, need)
							scr.slabS = slabS
						}
						slabSBuf = nil
					}
					tc.sEvents = slabS[0:0:hintS]
					slabS = slabS[hintS:]
				}
				wc.Lanes = append(wc.Lanes, tc)
			}
			runWarp(wc)
			if w == 0 {
				for _, tc := range wc.Lanes {
					if n := len(tc.gEvents); n > hintG {
						hintG = n
					}
					if n := len(tc.sEvents); n > hintS {
						hintS = n
					}
				}
			}
		}
		for t := range ctxs {
			if ctxs[t] == nil {
				tc := &backing[t]
				tc.Dev = d
				tc.block = bcx
				tc.warp = t / warpSize
				ctxs[t] = tc
			}
		}
		res := d.collectBlock(bcx, ctxs, warpSize)
		scratchPool.Put(scr)
		return res
	}

	// Barrier path: one goroutine per warp. Lanes of a warp execute on a
	// single goroutine, so they can share one access cache.
	var wg sync.WaitGroup
	if cap(scr.caches) < nWarps {
		scr.caches = make([]allocCache, nWarps)
	}
	caches := scr.caches[:nWarps]
	clear(caches)
	for w := 0; w < nWarps; w++ {
		lo := w * warpSize
		hi := min(lo+warpSize, threads)
		wc := &WarpCtx{block: bcx}
		for t := lo; t < hi; t++ {
			wc.Lanes = append(wc.Lanes, initCtx(t, &caches[w]))
		}
		wg.Add(1)
		go func(wc *WarpCtx) {
			defer wg.Done()
			runWarp(wc)
		}(wc)
	}
	wg.Wait()
	res := d.collectBlock(bcx, ctxs, warpSize)
	scratchPool.Put(scr)
	return res
}
