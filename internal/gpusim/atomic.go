package gpusim

import (
	"math"
	"sync"
)

// Atomic operations on global and shared memory. Global atomics take a
// striped lock on the device keyed by the target address so that atomics
// to distinct words proceed mostly in parallel, as on hardware. Shared
// atomics lock the block (shared memory is private to a block, and the
// interpreter issues them rarely enough that one lock suffices).

func (d *Device) atomicLock(p Ptr, idx int) *sync.Mutex {
	h := (p.alloc*2654435761 + uint64(int64(idx))) % uint64(len(d.atomicLocks))
	return &d.atomicLocks[h]
}

// AtomicAddFloat32 atomically adds val to the float32 at element idx of the
// global allocation behind p and returns the old value (CUDA atomicAdd).
func (tc *ThreadCtx) AtomicAddFloat32(p Ptr, idx int, val float32) (float32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := math.Float32frombits(leU32(v))
	putLeU32(v, math.Float32bits(old+val))
	return old, nil
}

// AtomicAddInt32 atomically adds val to the int32 at element idx.
func (tc *ThreadCtx) AtomicAddInt32(p Ptr, idx int, val int32) (int32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := int32(leU32(v))
	putLeU32(v, uint32(old+val))
	return old, nil
}

// AtomicMaxInt32 atomically stores max(old, val) and returns old.
func (tc *ThreadCtx) AtomicMaxInt32(p Ptr, idx int, val int32) (int32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := int32(leU32(v))
	if val > old {
		putLeU32(v, uint32(val))
	}
	return old, nil
}

// AtomicMinInt32 atomically stores min(old, val) and returns old.
func (tc *ThreadCtx) AtomicMinInt32(p Ptr, idx int, val int32) (int32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := int32(leU32(v))
	if val < old {
		putLeU32(v, uint32(val))
	}
	return old, nil
}

// AtomicCASInt32 performs compare-and-swap and returns the old value.
func (tc *ThreadCtx) AtomicCASInt32(p Ptr, idx int, compare, val int32) (int32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := int32(leU32(v))
	if old == compare {
		putLeU32(v, uint32(val))
	}
	return old, nil
}

// AtomicExchInt32 atomically swaps in val and returns the old value.
func (tc *ThreadCtx) AtomicExchInt32(p Ptr, idx int, val int32) (int32, error) {
	lk := tc.Dev.atomicLock(p, idx)
	lk.Lock()
	defer lk.Unlock()
	v, err := tc.Dev.view(p.Offset(idx*4), 4)
	if err != nil {
		return 0, err
	}
	tc.stats.atomics++
	old := int32(leU32(v))
	putLeU32(v, uint32(val))
	return old, nil
}

// SharedAtomicAddInt32 atomically adds val to the int32 at element idx of
// the block's shared memory and returns the old value.
func (tc *ThreadCtx) SharedAtomicAddInt32(idx int, val int32) (int32, error) {
	bc := tc.block
	bc.mu.Lock()
	defer bc.mu.Unlock()
	off := idx * 4
	if off < 0 || off+4 > len(bc.shared) {
		return 0, ErrIllegalAccess
	}
	tc.stats.atomics++
	old := int32(leU32(bc.shared[off:]))
	putLeU32(bc.shared[off:], uint32(old+val))
	return old, nil
}

// SharedAtomicAddFloat32 atomically adds val to the float32 at element idx
// of the block's shared memory and returns the old value.
func (tc *ThreadCtx) SharedAtomicAddFloat32(idx int, val float32) (float32, error) {
	bc := tc.block
	bc.mu.Lock()
	defer bc.mu.Unlock()
	off := idx * 4
	if off < 0 || off+4 > len(bc.shared) {
		return 0, ErrIllegalAccess
	}
	tc.stats.atomics++
	old := math.Float32frombits(leU32(bc.shared[off:]))
	putLeU32(bc.shared[off:], math.Float32bits(old+val))
	return old, nil
}
