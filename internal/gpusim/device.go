// Package gpusim implements a deterministic simulator for a CUDA-class
// bulk-synchronous GPU. It stands in for the physical NVIDIA devices the
// WebGPU paper's worker nodes expose: it provides device properties, the
// global/shared/constant memory spaces, kernel launches over a grid of
// thread blocks scheduled across simulated streaming multiprocessors,
// __syncthreads-style barriers with divergence detection, atomics, and a
// cycle-level cost model that captures memory coalescing and shared-memory
// bank conflicts so that the relative performance of the course labs
// (e.g. tiled vs. basic matrix multiply) has the right shape.
//
// The simulator is exact with respect to results (bit-wise deterministic
// float32 arithmetic per thread) and approximate with respect to timing
// (see cost.go for the model).
package gpusim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Dim3 is a three-dimensional extent or index, as in CUDA's dim3.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total number of elements covered by the extent.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

// String renders the dimension in CUDA's (x, y, z) order.
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// D1 is shorthand for a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 is shorthand for a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// D3 is shorthand for a three-dimensional Dim3.
func D3(x, y, z int) Dim3 { return Dim3{X: x, Y: y, Z: z} }

// DeviceProps describes a simulated GPU, mirroring cudaDeviceProp. The
// Device Query lab reports these fields.
type DeviceProps struct {
	Name                 string
	ComputeCapability    [2]int // major, minor
	MultiprocessorCount  int
	CoresPerSM           int
	WarpSize             int
	MaxThreadsPerBlock   int
	MaxBlockDim          Dim3
	MaxGridDim           Dim3
	TotalGlobalMem       int // bytes
	SharedMemPerBlock    int // bytes
	TotalConstMem        int // bytes
	RegistersPerBlock    int
	ClockRateKHz         int
	MemoryClockRateKHz   int
	MemoryBusWidthBits   int
	L2CacheSize          int
	ConcurrentKernels    bool
	ECCEnabled           bool
	UnifiedAddressing    bool
	AsyncEngineCount     int
	PCIBusID             int
	PCIDeviceID          int
	KernelTimeoutEnabled bool
}

// DefaultProps returns properties modeled on the Kepler/Maxwell-era cards
// that backed WebGPU's AWS g2 worker nodes during the 2013-2015 course
// offerings.
func DefaultProps() DeviceProps {
	return DeviceProps{
		Name:                "SimGPU GRID K520",
		ComputeCapability:   [2]int{3, 0},
		MultiprocessorCount: 8,
		CoresPerSM:          192,
		WarpSize:            32,
		MaxThreadsPerBlock:  1024,
		MaxBlockDim:         Dim3{1024, 1024, 64},
		MaxGridDim:          Dim3{2147483647, 65535, 65535},
		TotalGlobalMem:      4 << 30,
		SharedMemPerBlock:   48 << 10,
		TotalConstMem:       64 << 10,
		RegistersPerBlock:   65536,
		ClockRateKHz:        797000,
		MemoryClockRateKHz:  2500000,
		MemoryBusWidthBits:  256,
		L2CacheSize:         512 << 10,
		ConcurrentKernels:   true,
		UnifiedAddressing:   true,
		AsyncEngineCount:    2,
		PCIBusID:            0,
		PCIDeviceID:         3,
	}
}

// Common simulator errors.
var (
	ErrOutOfMemory       = errors.New("gpusim: out of memory")
	ErrInvalidPtr        = errors.New("gpusim: invalid device pointer")
	ErrIllegalAccess     = errors.New("gpusim: an illegal memory access was encountered")
	ErrInvalidLaunch     = errors.New("gpusim: invalid launch configuration")
	ErrBarrierDivergence = errors.New("gpusim: barrier divergence: __syncthreads not reached by all threads")
	ErrDeviceClosed      = errors.New("gpusim: device has been reset")
)

// Ptr is a device global-memory pointer: an allocation handle plus a byte
// offset. Arithmetic within an allocation is allowed; crossing allocation
// boundaries is an illegal access, which is how the simulator detects the
// out-of-bounds bugs students write.
type Ptr struct {
	alloc uint64
	Off   int
}

// IsNil reports whether the pointer is the device null pointer.
func (p Ptr) IsNil() bool { return p.alloc == 0 }

// Offset returns a pointer advanced by n bytes within the same allocation.
func (p Ptr) Offset(n int) Ptr { return Ptr{alloc: p.alloc, Off: p.Off + n} }

type allocation struct {
	id   uint64
	data []byte
}

// Device is a simulated GPU. All methods are safe for concurrent use; a
// Device may be shared by the container pool of a worker node.
type Device struct {
	props DeviceProps
	index int

	mu        sync.Mutex
	closed    bool
	nextAlloc uint64
	allocs    map[uint64]*allocation
	usedBytes int
	constMem  []byte

	atomicLocks [64]sync.Mutex // striped locks for global-memory atomics

	statsMu     sync.Mutex
	launches    []*LaunchStats
	totalKernel int
}

// NewDevice creates a device with the given properties.
func NewDevice(props DeviceProps) *Device {
	return &Device{
		props:     props,
		nextAlloc: 1,
		allocs:    make(map[uint64]*allocation),
		constMem:  make([]byte, props.TotalConstMem),
	}
}

// NewDefaultDevice creates a device with DefaultProps.
func NewDefaultDevice() *Device { return NewDevice(DefaultProps()) }

// Props returns the device properties.
func (d *Device) Props() DeviceProps { return d.props }

// Index returns the device ordinal assigned by SetIndex (0 by default).
func (d *Device) Index() int { return d.index }

// SetIndex assigns the device ordinal, as in a multi-GPU worker node.
func (d *Device) SetIndex(i int) { d.index = i }

// Malloc allocates size bytes of zeroed global memory.
func (d *Device) Malloc(size int) (Ptr, error) {
	if size < 0 {
		return Ptr{}, fmt.Errorf("%w: negative size %d", ErrInvalidPtr, size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return Ptr{}, ErrDeviceClosed
	}
	if d.usedBytes+size > d.props.TotalGlobalMem {
		return Ptr{}, fmt.Errorf("%w: requested %d bytes, %d in use of %d",
			ErrOutOfMemory, size, d.usedBytes, d.props.TotalGlobalMem)
	}
	id := d.nextAlloc
	d.nextAlloc++
	d.allocs[id] = &allocation{id: id, data: make([]byte, size)}
	d.usedBytes += size
	return Ptr{alloc: id}, nil
}

// Free releases an allocation. Freeing the null pointer is a no-op, as in
// cudaFree.
func (d *Device) Free(p Ptr) error {
	if p.IsNil() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[p.alloc]
	if !ok {
		return fmt.Errorf("%w: free of unknown allocation", ErrInvalidPtr)
	}
	d.usedBytes -= len(a.data)
	delete(d.allocs, p.alloc)
	return nil
}

// UsedBytes reports the bytes of global memory currently allocated.
func (d *Device) UsedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedBytes
}

// AllocCount reports the number of live allocations; the worker node uses
// it to detect leaks between jobs.
func (d *Device) AllocCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.allocs)
}

func (d *Device) lookup(p Ptr) (*allocation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrDeviceClosed
	}
	a, ok := d.allocs[p.alloc]
	if !ok {
		return nil, ErrInvalidPtr
	}
	return a, nil
}

// view returns the byte slice [p.Off, p.Off+n) of the allocation behind p.
func (d *Device) view(p Ptr, n int) ([]byte, error) {
	a, err := d.lookup(p)
	if err != nil {
		return nil, err
	}
	if p.Off < 0 || n < 0 || p.Off+n > len(a.data) {
		return nil, fmt.Errorf("%w: offset %d size %d in allocation of %d bytes",
			ErrIllegalAccess, p.Off, n, len(a.data))
	}
	return a.data[p.Off : p.Off+n], nil
}

// MemcpyHtoD copies host bytes to device memory.
func (d *Device) MemcpyHtoD(dst Ptr, src []byte) error {
	v, err := d.view(dst, len(src))
	if err != nil {
		return err
	}
	copy(v, src)
	return nil
}

// MemcpyDtoH copies device memory to host bytes.
func (d *Device) MemcpyDtoH(dst []byte, src Ptr) error {
	v, err := d.view(src, len(dst))
	if err != nil {
		return err
	}
	copy(dst, v)
	return nil
}

// MemcpyDtoD copies n bytes between device allocations.
func (d *Device) MemcpyDtoD(dst, src Ptr, n int) error {
	sv, err := d.view(src, n)
	if err != nil {
		return err
	}
	dv, err := d.view(dst, n)
	if err != nil {
		return err
	}
	copy(dv, sv)
	return nil
}

// Memset fills n bytes of device memory with b.
func (d *Device) Memset(p Ptr, b byte, n int) error {
	v, err := d.view(p, n)
	if err != nil {
		return err
	}
	for i := range v {
		v[i] = b
	}
	return nil
}

// AllocSize returns the size in bytes of the allocation behind p.
func (d *Device) AllocSize(p Ptr) (int, error) {
	a, err := d.lookup(p)
	if err != nil {
		return 0, err
	}
	return len(a.data), nil
}

// CopyToConst copies host bytes into constant memory at byte offset off.
func (d *Device) CopyToConst(off int, src []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+len(src) > len(d.constMem) {
		return fmt.Errorf("%w: constant memory write [%d,%d) of %d",
			ErrIllegalAccess, off, off+len(src), len(d.constMem))
	}
	copy(d.constMem[off:], src)
	return nil
}

// ConstMem returns a read-only view of constant memory. Kernels read it
// through ThreadCtx so accesses are cost-accounted.
func (d *Device) ConstMem() []byte { return d.constMem }

// Reset frees all allocations and clears constant memory, as in
// cudaDeviceReset. Launch statistics are preserved.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.allocs = make(map[uint64]*allocation)
	d.usedBytes = 0
	for i := range d.constMem {
		d.constMem[i] = 0
	}
}

// Close marks the device unusable.
func (d *Device) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

func (d *Device) recordLaunch(s *LaunchStats) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.launches = append(d.launches, s)
	d.totalKernel++
}

// Launches returns a copy of the statistics of all kernel launches so far,
// oldest first.
func (d *Device) Launches() []*LaunchStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	out := make([]*LaunchStats, len(d.launches))
	copy(out, d.launches)
	return out
}

// LaunchCount reports how many kernels have executed on the device.
func (d *Device) LaunchCount() int {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.totalKernel
}

// ClearLaunches discards recorded launch statistics.
func (d *Device) ClearLaunches() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.launches = nil
}

// QueryString renders the device properties in the format the Device Query
// lab expects students to produce.
func (d *Device) QueryString() string {
	p := d.props
	return fmt.Sprintf(
		"Device %d name: %s\n"+
			" Computational Capabilities: %d.%d\n"+
			" Maximum global memory size: %d\n"+
			" Maximum constant memory size: %d\n"+
			" Maximum shared memory size per block: %d\n"+
			" Maximum block dimensions: %d x %d x %d\n"+
			" Maximum grid dimensions: %d x %d x %d\n"+
			" Warp size: %d\n",
		d.index, p.Name, p.ComputeCapability[0], p.ComputeCapability[1],
		p.TotalGlobalMem, p.TotalConstMem, p.SharedMemPerBlock,
		p.MaxBlockDim.X, p.MaxBlockDim.Y, p.MaxBlockDim.Z,
		p.MaxGridDim.X, p.MaxGridDim.Y, p.MaxGridDim.Z, p.WarpSize)
}

// Allocations lists the live allocation handles in ascending order; used by
// tests and the leak detector.
func (d *Device) Allocations() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]uint64, 0, len(d.allocs))
	for id := range d.allocs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
