package autoscale

import (
	"testing"
	"time"

	"webgpu/internal/workload"
)

func courseArrivals() ([]float64, time.Time) {
	m := workload.Figure1Model()
	series := m.HourlySeries()
	return workload.SubmissionArrivals(series, 2.0), m.Start
}

const svcRate = 30.0 // jobs per worker per hour

func TestStaticPolicy(t *testing.T) {
	arr, start := courseArrivals()
	res := Simulate(arr, start, svcRate, Static{N: 8})
	if res.Policy != "static" {
		t.Errorf("name = %s", res.Policy)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.MeanWorkers != 8 || res.PeakWorkers != 8 {
		t.Errorf("static workers drifted: mean=%v peak=%d", res.MeanWorkers, res.PeakWorkers)
	}
}

// The paper's core provisioning claim (§II-C): a static fleet sized for
// the course start is mostly idle by the end; elastic scaling delivers
// comparable latency for far fewer worker-hours.
func TestElasticBeatsStaticOnCost(t *testing.T) {
	arr, start := courseArrivals()

	// Static sized for the peak hour.
	peak := 0.0
	for _, a := range arr {
		if a > peak {
			peak = a
		}
	}
	staticN := int(peak/svcRate) + 1
	static := Simulate(arr, start, svcRate, Static{N: staticN})

	reactive := Simulate(arr, start, svcRate, Reactive{
		PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: staticN,
	})

	if reactive.WorkerHours >= static.WorkerHours {
		t.Errorf("reactive worker-hours %.0f >= static %.0f", reactive.WorkerHours, static.WorkerHours)
	}
	// Large saving: the decay + weekly cycle leaves static mostly idle.
	if reactive.WorkerHours > 0.5*static.WorkerHours {
		t.Errorf("elastic saving too small: %.0f vs %.0f worker-hours",
			reactive.WorkerHours, static.WorkerHours)
	}
	// And latency stays acceptable.
	if reactive.P95WaitHours > static.P95WaitHours+1.5 {
		t.Errorf("reactive p95 wait %.2fh vs static %.2fh", reactive.P95WaitHours, static.P95WaitHours)
	}
	if reactive.UtilizationPct <= static.UtilizationPct {
		t.Errorf("reactive utilization %.1f%% <= static %.1f%%",
			reactive.UtilizationPct, static.UtilizationPct)
	}
	t.Logf("static: %d workers, %.0f worker-hours, %.1f%% util, p95 %.2fh",
		staticN, static.WorkerHours, static.UtilizationPct, static.P95WaitHours)
	t.Logf("reactive: peak %d workers, %.0f worker-hours, %.1f%% util, p95 %.2fh",
		reactive.PeakWorkers, reactive.WorkerHours, reactive.UtilizationPct, reactive.P95WaitHours)
}

// The paper's actual practice: scale up the day before the deadline.
func TestScheduledBoostHelpsDeadlineDay(t *testing.T) {
	arr, start := courseArrivals()
	base := Simulate(arr, start, svcRate, Static{N: 2})
	sched := Simulate(arr, start, svcRate, Scheduled{
		Base: 2, Boost: 8,
		BoostDays: map[time.Weekday]bool{time.Wednesday: true, time.Thursday: true},
	})
	if sched.P95WaitHours >= base.P95WaitHours {
		t.Errorf("scheduled p95 %.2f >= base %.2f", sched.P95WaitHours, base.P95WaitHours)
	}
	// The boost costs far less than running 8 workers all week.
	alwaysBig := Simulate(arr, start, svcRate, Static{N: 8})
	if sched.WorkerHours >= alwaysBig.WorkerHours {
		t.Errorf("scheduled cost %.0f >= always-big %.0f", sched.WorkerHours, alwaysBig.WorkerHours)
	}
}

func TestHybridTakesMax(t *testing.T) {
	h := Hybrid{
		Sched:    Scheduled{Base: 2, Boost: 10, BoostDays: map[time.Weekday]bool{time.Wednesday: true}},
		Reactive: Reactive{PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: 50},
	}
	wed := Observation{Time: time.Date(2015, 2, 18, 12, 0, 0, 0, time.UTC), Backlog: 0}
	if got := h.Decide(wed); got != 10 {
		t.Errorf("wednesday decide = %d", got)
	}
	mondayRush := Observation{Time: time.Date(2015, 2, 16, 12, 0, 0, 0, time.UTC), Backlog: 900}
	if got := h.Decide(mondayRush); got <= 10 {
		t.Errorf("rush decide = %d, want reactive > 10", got)
	}
}

func TestReactiveBounds(t *testing.T) {
	r := Reactive{PerWorkerPerHour: 10, TargetHours: 1, Min: 2, Max: 5}
	if got := r.Decide(Observation{Backlog: 0}); got != 2 {
		t.Errorf("idle decide = %d, want Min", got)
	}
	if got := r.Decide(Observation{Backlog: 10000}); got != 5 {
		t.Errorf("overload decide = %d, want Max", got)
	}
}

func TestSimulateConservation(t *testing.T) {
	arr := []float64{10, 10, 10, 0, 0, 0, 0, 0}
	res := Simulate(arr, time.Unix(0, 0), 5, Static{N: 2})
	if res.Completed+res.Dropped != 30 {
		t.Errorf("jobs lost: completed %d + dropped %d != 30", res.Completed, res.Dropped)
	}
}

func TestZeroWorkersDropsEverything(t *testing.T) {
	arr := []float64{5, 5}
	res := Simulate(arr, time.Unix(0, 0), 10, Static{N: 0})
	if res.Completed != 0 || res.Dropped != 10 {
		t.Errorf("res = %+v", res)
	}
}
