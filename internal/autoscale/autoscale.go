// Package autoscale implements the worker-scaling policies the paper
// discusses and a discrete-time simulator for comparing them. §II-C: "a
// statically-provisioned computing resource large enough for the
// beginning of the course will be mostly idle by the end"; §III: "We
// increased the number of GPUs available to WebGPU the day before the
// deadline" (the scheduled policy); the v2 design's poll model enables
// fully reactive scaling (§VI-A: "we can more freely perform automatic
// scaling of the worker nodes").
package autoscale

import (
	"math"
	"sort"
	"time"
)

// Observation is what a policy sees each tick (one hour).
type Observation struct {
	Tick        int
	Time        time.Time
	Backlog     int     // jobs waiting
	OldestWait  float64 // hours the oldest waiting job has waited
	Workers     int
	ArrivalRate float64 // jobs that arrived this tick
}

// Policy decides the desired worker count for the next tick.
type Policy interface {
	Name() string
	Decide(obs Observation) int
}

// Static keeps a fixed fleet — the traditional provisioning the paper
// argues against.
type Static struct {
	N int
}

// Name implements Policy.
func (s Static) Name() string { return "static" }

// Decide implements Policy.
func (s Static) Decide(Observation) int { return s.N }

// Reactive sizes the fleet so the backlog clears within TargetHours at
// the per-worker throughput, within [Min, Max].
type Reactive struct {
	PerWorkerPerHour float64
	TargetHours      float64
	Min, Max         int
}

// Name implements Policy.
func (r Reactive) Name() string { return "reactive" }

// Decide implements Policy.
func (r Reactive) Decide(obs Observation) int {
	load := float64(obs.Backlog) + obs.ArrivalRate
	want := int(math.Ceil(load / (r.PerWorkerPerHour * math.Max(r.TargetHours, 1e-9))))
	if want < r.Min {
		want = r.Min
	}
	if r.Max > 0 && want > r.Max {
		want = r.Max
	}
	return want
}

// Scheduled runs Base workers normally and Boost workers on the listed
// weekdays — the paper's manual "day before the deadline" scale-up.
type Scheduled struct {
	Base, Boost int
	BoostDays   map[time.Weekday]bool
}

// Name implements Policy.
func (s Scheduled) Name() string { return "scheduled" }

// Decide implements Policy.
func (s Scheduled) Decide(obs Observation) int {
	if s.BoostDays[obs.Time.Weekday()] {
		return s.Boost
	}
	return s.Base
}

// Hybrid takes the max of a schedule and a reactive floor: the scheduled
// boost handles the known deadline rush, the reactive part absorbs
// surprises.
type Hybrid struct {
	Sched    Scheduled
	Reactive Reactive
}

// Name implements Policy.
func (h Hybrid) Name() string { return "hybrid" }

// Decide implements Policy.
func (h Hybrid) Decide(obs Observation) int {
	a, b := h.Sched.Decide(obs), h.Reactive.Decide(obs)
	if a > b {
		return a
	}
	return b
}

// Result summarizes one simulated course under a policy.
type Result struct {
	Policy         string
	Completed      int
	Dropped        int // jobs still queued at course end
	WorkerHours    float64
	MeanWaitHours  float64
	P95WaitHours   float64
	MaxWaitHours   float64
	MaxQueue       int
	MeanWorkers    float64
	PeakWorkers    int
	UtilizationPct float64 // busy worker-hours / provisioned worker-hours
}

// Simulate runs an hourly discrete-event queue: arrivals[t] jobs arrive at
// tick t, each worker serves perWorkerPerHour jobs per tick, and the
// policy resizes the fleet each tick. Jobs are FIFO; waits are measured in
// hours from arrival to service start.
func Simulate(arrivals []float64, start time.Time, perWorkerPerHour float64, p Policy) Result {
	res := Result{Policy: p.Name()}
	type job struct{ arrived int }
	var queue []job
	var waits []float64
	workers := 0
	var busyHours float64
	carry := 0.0 // fractional arrivals carried between ticks

	for t := 0; t < len(arrivals); t++ {
		now := start.Add(time.Duration(t) * time.Hour)

		carry += arrivals[t]
		n := int(carry)
		carry -= float64(n)
		for i := 0; i < n; i++ {
			queue = append(queue, job{arrived: t})
		}

		oldest := 0.0
		if len(queue) > 0 {
			oldest = float64(t - queue[0].arrived)
		}
		workers = p.Decide(Observation{
			Tick:        t,
			Time:        now,
			Backlog:     len(queue),
			OldestWait:  oldest,
			Workers:     workers,
			ArrivalRate: arrivals[t],
		})
		if workers < 0 {
			workers = 0
		}
		res.WorkerHours += float64(workers)
		res.MeanWorkers += float64(workers)
		if workers > res.PeakWorkers {
			res.PeakWorkers = workers
		}

		capacity := int(float64(workers) * perWorkerPerHour)
		served := capacity
		if served > len(queue) {
			served = len(queue)
		}
		for i := 0; i < served; i++ {
			waits = append(waits, float64(t-queue[i].arrived))
		}
		busyHours += float64(served) / math.Max(perWorkerPerHour, 1e-9)
		queue = queue[served:]
		if len(queue) > res.MaxQueue {
			res.MaxQueue = len(queue)
		}
	}

	res.Completed = len(waits)
	res.Dropped = len(queue)
	if len(arrivals) > 0 {
		res.MeanWorkers /= float64(len(arrivals))
	}
	if res.WorkerHours > 0 {
		res.UtilizationPct = 100 * busyHours / res.WorkerHours
	}
	if len(waits) > 0 {
		var sum float64
		for _, w := range waits {
			sum += w
			if w > res.MaxWaitHours {
				res.MaxWaitHours = w
			}
		}
		res.MeanWaitHours = sum / float64(len(waits))
		sorted := append([]float64(nil), waits...)
		sort.Float64s(sorted)
		res.P95WaitHours = sorted[int(0.95*float64(len(sorted)-1))]
	}
	return res
}
