package experiments

import (
	"context"
	"fmt"
	"strings"

	"webgpu/internal/feedback"
	"webgpu/internal/labs"
)

// Hints demonstrates the automated-feedback analyzer (the §VIII future
// work, implemented in internal/feedback) on a gallery of the classic
// student mistakes the course staff answered by hand on the forums.
func Hints() string {
	var sb strings.Builder
	sb.WriteString("== E1: automated feedback / on-demand hints (§VIII) ==\n\n")

	cases := []struct {
		title string
		labID string
		src   string
	}{
		{"missing bounds check", "vector-add", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`},
		{"__syncthreads in a divergent branch", "vector-add", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    __syncthreads();
    out[i] = in1[i] + in2[i];
  }
}`},
		{"misspelled builtin", "vector-add", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  syncthreads();
}`},
		{"infinite loop", "vector-add", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  float x = 0.0f;
  while (1) { x += 1.0f; }
  out[0] = x;
}`},
		{"off-by-one at the boundary", "vector-add", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len - 1) out[i] = in1[i] + in2[i];
  else if (i < len) out[i] = 0.0f;
}`},
		{"correct but untiled (tiled-matmul lab)", "tiled-matmul", `__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                               int numARows, int numACols, int numBCols) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numARows && col < numBCols) {
    float acc = 0.0f;
    for (int k = 0; k < numACols; k++)
      acc += A[row * numACols + k] * B[k * numBCols + col];
    C[row * numBCols + col] = acc;
  }
}`},
	}

	for _, c := range cases {
		l := labs.ByID(c.labID)
		o := labs.Run(context.Background(), l, c.src, 0, labs.NewDeviceSet(1), 200000)
		hints := feedback.Analyze(l, c.src, o)
		fmt.Fprintf(&sb, "%s:\n", c.title)
		if len(hints) == 0 {
			sb.WriteString("  (no hints)\n")
		} else {
			h := hints[0]
			fmt.Fprintf(&sb, "  [%.0f%%] %s — %s\n", 100*h.Confidence, h.Title, firstSentence(h.Detail))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("hints are served on demand at GET /api/labs/{id}/hints from the\n")
	sb.WriteString("student's latest attempt and current code.\n")
	return sb.String()
}

func firstSentence(s string) string {
	if i := strings.Index(s, ". "); i > 0 {
		return s[:i+1]
	}
	return s
}
