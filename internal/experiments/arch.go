package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/platform"
	"webgpu/internal/queue"
	"webgpu/internal/webserver"
	"webgpu/internal/worker"
)

// apiClient is a tiny JSON client over an httptest server.
type apiClient struct {
	base  string
	token string
	http  *http.Client
}

func newAPIClient(base string) *apiClient {
	return &apiClient{base: base, http: &http.Client{Timeout: 2 * time.Minute}}
}

func (c *apiClient) do(method, path string, body, out interface{}) (int, error) {
	var rd bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = *bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, &rd)
	if err != nil {
		return 0, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w", buf.String(), err)
		}
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("%s %s: %d %s", method, path, resp.StatusCode, buf.String())
	}
	return resp.StatusCode, nil
}

func (c *apiClient) register(email, role string) error {
	var resp struct {
		Token string `json:"token"`
	}
	_, err := c.do("POST", "/api/register",
		map[string]string{"name": email, "email": email, "role": role}, &resp)
	c.token = resp.Token
	return err
}

// pipelineRun drives nStudents × attempts full vector-add attempts through
// a platform over HTTP and reports throughput.
func pipelineRun(p *platform.Platform, nStudents, attemptsEach int) (time.Duration, int, error) {
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	src := labs.ByID("vector-add").Reference

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, nStudents)
	correct := make([]int, nStudents)
	for s := 0; s < nStudents; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := newAPIClient(ts.URL)
			if err := c.register(fmt.Sprintf("student%03d@example.edu", s), "student"); err != nil {
				errs[s] = err
				return
			}
			if _, err := c.do("POST", "/api/labs/vector-add/save",
				map[string]string{"source": src}, nil); err != nil {
				errs[s] = err
				return
			}
			for a := 0; a < attemptsEach; a++ {
				var att webserver.AttemptRec
				if _, err := c.do("POST", "/api/labs/vector-add/attempt?dataset=0", nil, &att); err != nil {
					errs[s] = err
					return
				}
				if att.Outcome != nil && att.Outcome.Correct {
					correct[s]++
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := 0
	for s := range errs {
		if errs[s] != nil {
			return elapsed, 0, errs[s]
		}
		total += correct[s]
	}
	return elapsed, total, nil
}

// Figure2 exercises the v1 architecture: web server ¬, database ­, and a
// push-dispatched worker pool ®, measuring the end-to-end submission flow.
func Figure2() string {
	var sb strings.Builder
	sb.WriteString("== Figure 2: v1 architecture (web server -> DB -> pushed workers) ==\n\n")
	p := platform.New(platform.Options{Arch: platform.V1, Workers: 4})
	defer p.Close()

	const students, attempts = 8, 2
	elapsed, correct, err := pipelineRun(p, students, attempts)
	if err != nil {
		return sb.String() + "ERROR: " + err.Error() + "\n"
	}
	jobs := students * attempts
	fmt.Fprintf(&sb, "workers (push-dispatched):  %d\n", p.Workers())
	fmt.Fprintf(&sb, "students x attempts:        %d x %d = %d jobs\n", students, attempts, jobs)
	fmt.Fprintf(&sb, "correct results relayed:    %d/%d\n", correct, jobs)
	fmt.Fprintf(&sb, "end-to-end wall time:       %v (%.1f jobs/s)\n",
		elapsed.Round(time.Millisecond), float64(jobs)/elapsed.Seconds())
	fmt.Fprintf(&sb, "health-checked worker pool: %v alive, %d evictions\n",
		p.Registry.Alive(), p.Registry.Evictions())
	sb.WriteString("\nflow per the paper: user code -> web server -> worker (compile+run in\n" +
		"sandbox) -> results -> web server -> user; all code/attempt records in the DB.\n")
	return sb.String()
}

// Figure3 renders the Code view of a lab (editor, compile controls,
// dataset drop-down) and reports its elements.
func Figure3() string {
	var sb strings.Builder
	sb.WriteString("== Figure 3: the Code view (vector-add) ==\n\n")
	p := platform.New(platform.Options{Arch: platform.V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newAPIClient(ts.URL)
	if err := c.register("viewer@example.edu", "student"); err != nil {
		return err.Error()
	}
	req, _ := http.NewRequest("GET", ts.URL+"/labs/vector-add/view", nil)
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	page := buf.String()

	checks := []struct{ name, marker string }{
		{"navigation tabs (Description/Code/Questions/Attempts/History)", "Attempts | History"},
		{"code editor with skeleton", "<textarea"},
		{"skeleton kernel stub", "vecAdd"},
		{"compile control", `id="compile"`},
		{"dataset drop-down", `id="dataset"`},
		{"run control", `id="run"`},
		{"submit control", `id="submit"`},
	}
	for _, ch := range checks {
		present := "MISSING"
		if strings.Contains(page, ch.marker) {
			present = "present"
		}
		fmt.Fprintf(&sb, "  %-58s %s\n", ch.name, present)
	}
	fmt.Fprintf(&sb, "\nrendered page: %d bytes of HTML\n", len(page))
	return sb.String()
}

// Figure4 demonstrates the History view: every save is a retained
// revision.
func Figure4() string {
	var sb strings.Builder
	sb.WriteString("== Figure 4: the History view ==\n\n")
	p := platform.New(platform.Options{Arch: platform.V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newAPIClient(ts.URL)
	if err := c.register("hist@example.edu", "student"); err != nil {
		return err.Error()
	}
	snippets := []string{
		"// attempt 1: empty kernel",
		"// attempt 2: index without bounds check\nint i = blockIdx.x * blockDim.x + threadIdx.x;",
		labs.ByID("vector-add").Reference,
	}
	for _, src := range snippets {
		if _, err := c.do("POST", "/api/labs/vector-add/save",
			map[string]string{"source": src}, nil); err != nil {
			return err.Error()
		}
	}
	var historyPage struct {
		Items []webserver.CodeRec `json:"items"`
	}
	if _, err := c.do("GET", "/api/labs/vector-add/history", nil, &historyPage); err != nil {
		return err.Error()
	}
	history := historyPage.Items
	fmt.Fprintf(&sb, "%-5s %-22s %s\n", "rev", "saved at", "code (first line)")
	for _, h := range history {
		first := strings.SplitN(h.Source, "\n", 2)[0]
		if len(first) > 60 {
			first = first[:60]
		}
		fmt.Fprintf(&sb, "%-5d %-22s %s\n", h.Rev, h.SavedAt.Format(time.RFC3339), first)
	}
	fmt.Fprintf(&sb, "\n%d revisions retained; students can inspect and compare any of them.\n",
		len(history))
	return sb.String()
}

// Figure5 builds the Roster view: several students with different
// outcomes, as the instructor sees them.
func Figure5() string {
	var sb strings.Builder
	sb.WriteString("== Figure 5: the Roster view (instructor tools) ==\n\n")
	p := platform.New(platform.Options{Arch: platform.V1, Workers: 2})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	good := labs.ByID("vector-add").Reference
	wrong := strings.Replace(good, "in1[i] + in2[i]", "in1[i] - in2[i]", 1)
	students := []struct {
		email string
		src   string
		qs    int
	}{
		{"ada@example.edu", good, 2},
		{"bob@example.edu", wrong, 1},
		{"cyd@example.edu", good, 0},
	}
	for _, s := range students {
		c := newAPIClient(ts.URL)
		if err := c.register(s.email, "student"); err != nil {
			return err.Error()
		}
		if _, err := c.do("POST", "/api/labs/vector-add/save",
			map[string]string{"source": s.src}, nil); err != nil {
			return err.Error()
		}
		answers := make([]string, s.qs)
		for i := range answers {
			answers[i] = "an answer"
		}
		_, _ = c.do("POST", "/api/labs/vector-add/questions",
			map[string][]string{"answers": answers}, nil)
		if _, err := c.do("POST", "/api/labs/vector-add/submit", nil, nil); err != nil {
			return err.Error()
		}
	}
	prof := newAPIClient(ts.URL)
	if err := prof.register("hwu@example.edu", "instructor"); err != nil {
		return err.Error()
	}
	var roster []webserver.RosterRow
	if _, err := prof.do("GET", "/api/instructor/roster/vector-add", nil, &roster); err != nil {
		return err.Error()
	}
	fmt.Fprintf(&sb, "%-24s %-9s %-12s %-9s %-9s %-6s %s\n",
		"student", "attempts", "submissions", "program", "questions", "total", "last submitted")
	for _, r := range roster {
		fmt.Fprintf(&sb, "%-24s %-9d %-12d %-9d %-9d %d/%-3d %s\n",
			r.Email, r.Attempts, r.Submissions, r.ProgramGrade, r.QuestionGrade,
			r.TotalGrade, r.MaxGrade, r.LastSubmitted)
	}
	return sb.String()
}

// Figure6 exercises the v2 architecture: broker-queued polling workers
// with tag routing, mirrored broker, and replicated DB.
func Figure6() string {
	var sb strings.Builder
	sb.WriteString("== Figure 6: v2 architecture (broker + polling workers) ==\n\n")
	p := platform.New(platform.Options{Arch: platform.V2, Workers: 4, GPUsPerWorker: 2,
		Course: labs.CourseECE598})
	defer p.Close()

	const students, attempts = 8, 2
	elapsed, correct, err := pipelineRunLab(p, "scatter-to-gather", students, attempts)
	if err != nil {
		return sb.String() + "ERROR: " + err.Error() + "\n"
	}
	jobs := students * attempts
	fmt.Fprintf(&sb, "fleet size (polling drivers): %d\n", p.Workers())
	fmt.Fprintf(&sb, "jobs completed:               %d/%d correct\n", correct, jobs)
	fmt.Fprintf(&sb, "end-to-end wall time:         %v (%.1f jobs/s)\n",
		elapsed.Round(time.Millisecond), float64(jobs)/elapsed.Seconds())
	st := p.Broker.Stats()
	fmt.Fprintf(&sb, "broker: published=%d delivered=%d acked=%d redelivered=%d dead=%d\n",
		st.Published, st.Delivered, st.Acked, st.Redelivered, st.DeadLetters)
	fmt.Fprintf(&sb, "standby broker mirrored publishes: %d\n", p.StandbyBroker.Stats().Published)
	fmt.Fprintf(&sb, "replica lag after run: %d commits\n", p.Replica.Lag())
	sb.WriteString("\ntag routing: an MPI lab is left for a capable worker —\n")
	sb.WriteString(tagRoutingDemo())
	return sb.String()
}

// pipelineRunLab is pipelineRun for an arbitrary lab.
func pipelineRunLab(p *platform.Platform, labID string, nStudents, attemptsEach int) (time.Duration, int, error) {
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	src := labs.ByID(labID).Reference

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, nStudents)
	correct := make([]int, nStudents)
	for s := 0; s < nStudents; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := newAPIClient(ts.URL)
			if err := c.register(fmt.Sprintf("v2student%03d@example.edu", s), "student"); err != nil {
				errs[s] = err
				return
			}
			if _, err := c.do("POST", "/api/labs/"+labID+"/save",
				map[string]string{"source": src}, nil); err != nil {
				errs[s] = err
				return
			}
			for a := 0; a < attemptsEach; a++ {
				var att webserver.AttemptRec
				if _, err := c.do("POST", "/api/labs/"+labID+"/attempt?dataset=0", nil, &att); err != nil {
					errs[s] = err
					return
				}
				if att.Outcome != nil && att.Outcome.Correct {
					correct[s]++
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := 0
	for s := range errs {
		if errs[s] != nil {
			return elapsed, 0, errs[s]
		}
		total += correct[s]
	}
	return elapsed, total, nil
}

// tagRoutingDemo publishes a plain job and an MPI-tagged job to a broker
// with one plain worker, then adds a capable worker.
func tagRoutingDemo() string {
	var sb strings.Builder
	b := queue.NewBroker()
	cs := worker.NewConfigServer(worker.DefaultConfig())
	plain := worker.NewDriver(worker.NewNode(worker.DefaultNodeConfig("plain-worker")), b, cs)
	plain.Start()
	defer plain.Stop()

	mpiLab := labs.ByID("mpi-stencil")
	_, _ = b.Publish(worker.TopicJobs, worker.EncodeJob(&worker.Job{
		ID: "job-mpi", LabID: mpiLab.ID, Source: mpiLab.Reference, DatasetID: 0,
	}), mpiLab.Requirements...)
	_, _ = b.Publish(worker.TopicJobs, worker.EncodeJob(&worker.Job{
		ID: "job-plain", LabID: "vector-add", Source: labs.ByID("vector-add").Reference, DatasetID: 0,
	}))

	waitFor(func() bool { return plain.JobsDone() >= 1 }, 20*time.Second)
	fmt.Fprintf(&sb, "  plain 1-GPU worker completed %d job(s); MPI job still queued: %d\n",
		plain.JobsDone(), b.Backlog(worker.TopicJobs))

	cfg := worker.DefaultNodeConfig("mpi-worker")
	cfg.GPUs = 2
	capable := worker.NewDriver(worker.NewNode(cfg), b, cs)
	capable.Start()
	defer capable.Stop()
	waitFor(func() bool { return capable.JobsDone() >= 1 }, 30*time.Second)
	fmt.Fprintf(&sb, "  2-GPU MPI worker joined and completed %d job(s); backlog now %d\n",
		capable.JobsDone(), b.Backlog(worker.TopicJobs))
	return sb.String()
}

func waitFor(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// Figure7 measures the v2 worker's container pool: per-job container
// recycling (warm) vs creating containers on demand (cold), the §VI-B
// design and the D8 ablation.
func Figure7() string {
	var sb strings.Builder
	sb.WriteString("== Figure 7: v2 worker container pool ==\n\n")

	job := &worker.Job{ID: "j", LabID: "vector-add",
		Source: labs.ByID("vector-add").Reference, DatasetID: 0}

	// Warm pool (the paper's design).
	cfgWarm := worker.DefaultNodeConfig("warm")
	cfgWarm.PerImage = 2
	warm := worker.NewNode(cfgWarm)
	const jobs = 20
	startWarm := time.Now()
	for i := 0; i < jobs; i++ {
		if res := warm.Execute(context.Background(), job); !res.Correct() {
			return "ERROR: warm job failed: " + res.Error
		}
	}
	warmTime := time.Since(startWarm)
	wc, wd, wcold := warm.Pool().Stats()

	// Cold: no warm containers — every acquisition is on demand.
	cfgCold := worker.DefaultNodeConfig("cold")
	cfgCold.PerImage = -1
	cold := worker.NewNode(cfgCold)
	startCold := time.Now()
	for i := 0; i < jobs; i++ {
		if res := cold.Execute(context.Background(), job); !res.Correct() {
			return "ERROR: cold job failed: " + res.Error
		}
	}
	coldTime := time.Since(startCold)
	cc, cd, ccold := cold.Pool().Stats()

	fmt.Fprintf(&sb, "%d jobs, container-per-job with teardown after every job (§VI-B)\n\n", jobs)
	fmt.Fprintf(&sb, "%-22s %-10s %-10s %-11s %s\n", "configuration", "created", "destroyed", "cold-starts", "wall time")
	fmt.Fprintf(&sb, "%-22s %-10d %-10d %-11d %v\n", "warm pool (paper)", wc, wd, wcold, warmTime.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-22s %-10d %-10d %-11d %v\n", "no pool (cold start)", cc, cd, ccold, coldTime.Round(time.Millisecond))
	sb.WriteString("\nevery job ran in a fresh container (destroyed == jobs); the warm pool\n" +
		"replenishes asynchronously so acquisitions never wait on container creation\n" +
		"(cold-starts = 0), matching the cited result that Docker adds no overhead\n" +
		"to GPU job execution.\n")
	fmt.Fprintf(&sb, "\nGPU device state isolated between jobs: %d allocations leaked\n",
		leakCheck(warm))
	return sb.String()
}

func leakCheck(n *worker.Node) int {
	total := 0
	ctr, err := n.Pool().Acquire("webgpu/cuda:7.0")
	if err == nil {
		for _, d := range ctr.Devices {
			total += d.AllocCount()
		}
		n.Pool().Release(ctr)
	}
	return total
}
