// Package experiments regenerates every table and figure of the WebGPU
// paper, plus the derived ablations catalogued in DESIGN.md. Each
// experiment returns a human-readable report; cmd/webgpu-bench prints
// them and the repo-root benchmarks time their cores. The experiment IDs
// (T1, F1, ..., D8) match DESIGN.md's experiment index.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/workload"
)

// Registry of experiments for the CLI.
type Experiment struct {
	ID    string
	Name  string
	Run   func() string
	Paper string // what the paper reports, for EXPERIMENTS.md comparison
}

// All returns the experiments in catalog order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: registrations, completions, certificates (2013-2015)", Table1,
			"2013: 36896/2729/7.40%/-, 2014: 33818/1061/3.14%/286, 2015: 35940/1141/3.15%/442"},
		{"figure1", "Figure 1: active students per hour, Feb 8 - Apr 15 2015", Figure1,
			"peak 112 on Wed Feb 18, trough 8 on Apr 9, weekly Wednesday spikes"},
		{"figure2", "Figure 2: v1 architecture end-to-end submission flow", Figure2,
			"web server pushes jobs to workers; results relayed to students"},
		{"table2", "Table II: the 15 labs x 4 courses", Table2,
			"15 labs, courses HPP/408/598/PUMPS"},
		{"figure3", "Figure 3: the Code view", Figure3,
			"editor with skeleton, compilation controls, dataset drop-down"},
		{"figure4", "Figure 4: the History view", Figure4,
			"all code revisions retained with timestamps"},
		{"figure5", "Figure 5: the Roster view", Figure5,
			"per-student attempts, grades, question grades, submission times"},
		{"figure6", "Figure 6: v2 broker architecture", Figure6,
			"workers poll a replicated queue; tag-matched dispatch; replicated DB"},
		{"figure7", "Figure 7: v2 worker node container pool", Figure7,
			"driver runs each job in a pooled Docker container mapped to GPUs"},
		{"gpuratio", "D1: latency vs GPU:student ratio", GPURatio,
			"GPUs can be dramatically fewer than concurrent users"},
		{"provisioning", "D2: provisioning policies vs HPC-cluster baseline", Provisioning,
			"static peak provisioning is mostly idle; elastic matches latency at far lower cost"},
		{"dispatch", "D3: push (v1) vs poll (v2) dispatch under worker churn", Dispatch,
			"poll model with leases survives worker loss; push fails jobs"},
		{"peerreview", "D4: peer-review starvation vs retention", PeerReview,
			"high drop rate starves active students of reviews; weight 10%->5%->0"},
		{"security", "D5: blacklist scan modes and overhead", Security,
			"raw scan false-positives on comments; preprocessed scan avoids them"},
		{"tags", "D6: tag-aware dispatch vs max-spec fleet", Tags,
			"no need to provision all workers for the largest lab's requirements"},
		{"limits", "D7: submission rate and execution time limits", Limits,
			"per-lab time limits and submission-rate limits keep the system fair"},
		{"hints", "E1: automated feedback / on-demand hints (§VIII future work)", Hints,
			"future work: 'automated feedback to students and on-demand help/hints'"},
	}
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			cp := e
			return &cp
		}
	}
	return nil
}

// ---- T1: Table I -----------------------------------------------------------------

// Table1 reproduces Table I from the calibrated enrollment funnel, both
// in expectation and by stochastic simulation.
func Table1() string {
	var sb strings.Builder
	sb.WriteString("== Table I: Heterogeneous Parallel Programming on Coursera ==\n\n")
	sb.WriteString("Paper:\n")
	sb.WriteString(workload.FormatTableI(workload.PaperTableI))

	var expected, simulated []workload.YearResult
	rng := rand.New(rand.NewSource(1))
	for _, p := range workload.CalibratedYears() {
		expected = append(expected, p.Expected())
		simulated = append(simulated, p.Simulate(rng))
	}
	sb.WriteString("\nReproduced (calibrated funnel, expectation):\n")
	sb.WriteString(workload.FormatTableI(expected))
	sb.WriteString("\nReproduced (stochastic simulation, seed 1):\n")
	sb.WriteString(workload.FormatTableI(simulated))

	sb.WriteString("\nWeekly active students (2015 funnel):\n")
	for w, n := range expected[2].WeeklyActive {
		fmt.Fprintf(&sb, "  week %d: %6d\n", w+1, n)
	}
	return sb.String()
}

// ---- F1: Figure 1 ----------------------------------------------------------------

// Figure1 regenerates the active-students-per-hour series and renders the
// daily-peak chart with its summary statistics.
func Figure1() string {
	var sb strings.Builder
	sb.WriteString("== Figure 1: active students per hour (Feb 8 - Apr 15, 2015) ==\n\n")
	m := workload.Figure1Model()
	series := m.HourlySeries()
	s := workload.Stats(series)
	fmt.Fprintf(&sb, "hours simulated: %d\n", s.Hours)
	fmt.Fprintf(&sb, "peak:   %3d active at %s (%s)   [paper: 112 on Feb 18, a Wednesday]\n",
		s.Max, s.MaxAt.Format("Jan 2 15:04"), s.MaxAt.Weekday())
	fmt.Fprintf(&sb, "trough: %3d active at %s (%s)   [paper: 8 on Apr 9]\n",
		s.Min, s.MinAt.Format("Jan 2 15:04"), s.MinAt.Weekday())
	sb.WriteString("\nmean active by weekday (deadline Thursday; spike the day before):\n")
	for wd := time.Sunday; wd <= time.Saturday; wd++ {
		bar := strings.Repeat("#", int(s.ByWeekday[wd]/2))
		fmt.Fprintf(&sb, "  %-9s %6.1f %s\n", wd, s.ByWeekday[wd], bar)
	}
	sb.WriteString("\ndaily peak active students:\n")
	sb.WriteString(workload.RenderASCII(series, 50))
	return sb.String()
}

// ---- T2: Table II ----------------------------------------------------------------

// Table2 runs every lab's reference solution through a worker node and
// prints the lab x course matrix with the verification status.
func Table2() string {
	var sb strings.Builder
	sb.WriteString("== Table II: WebGPU-hosted labs and the courses they are used for ==\n\n")
	fmt.Fprintf(&sb, "%-28s %-52s %-4s %-4s %-4s %-6s %s\n",
		"Lab", "Description", "HPP", "408", "598", "PUMPS", "Reference")
	for _, l := range labs.All() {
		mark := func(c labs.Course) string {
			if l.UsedBy(c) {
				return "x"
			}
			return ""
		}
		status := verifyLab(l)
		fmt.Fprintf(&sb, "%-28s %-52s %-4s %-4s %-4s %-6s %s\n",
			l.Name, l.Summary, mark(labs.CourseHPP), mark(labs.CourseECE408),
			mark(labs.CourseECE598), mark(labs.CoursePUMPS), status)
	}
	sb.WriteString("\nlabs per course:\n")
	sb.WriteString(sortedCourses())
	sb.WriteString("\n")
	return sb.String()
}

func verifyLab(l *labs.Lab) string {
	n := l.NumGPUs
	if n == 0 {
		n = 1
	}
	devs := labs.NewDeviceSet(n)
	pass := 0
	var sim time.Duration
	for ds := 0; ds < l.NumDatasets; ds++ {
		o := labs.Run(context.Background(), l, l.Reference, ds, devs, 0)
		if o.Correct {
			pass++
		}
		sim += o.SimTime
	}
	return fmt.Sprintf("PASS %d/%d datasets (sim GPU time %v)", pass, l.NumDatasets, sim.Round(time.Microsecond))
}

// sortedCourses lists courses with their lab counts, a Table II footer.
func sortedCourses() string {
	var lines []string
	for _, c := range labs.AllCourses {
		lines = append(lines, fmt.Sprintf("  %-6s %2d labs", c, len(labs.ForCourse(c))))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
