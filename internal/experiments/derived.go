package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"webgpu/internal/autoscale"
	"webgpu/internal/cluster"
	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/peerreview"
	"webgpu/internal/queue"
	"webgpu/internal/sandbox"
	"webgpu/internal/worker"
	"webgpu/internal/workload"
)

// ---- D1: GPU:student ratio ---------------------------------------------------------

// GPURatio sweeps the number of GPUs serving a fixed concurrent student
// population and reports queueing delay — the paper's claim that "the
// number of GPUs available through WebGPU can be dramatically fewer than
// the expected number of concurrent users".
func GPURatio() string {
	var sb strings.Builder
	sb.WriteString("== D1: latency vs GPU:student ratio ==\n\n")
	sb.WriteString("peak-week load: 112 concurrent students (Figure 1 peak), each submitting\n")
	sb.WriteString("~2 jobs/hour; one GPU serves ~30 jobs/hour.\n\n")

	const students = 112.0
	const jobsPerStudentHour = 2.0
	const svcRate = 30.0
	arrivals := make([]float64, 72) // three peak days
	for i := range arrivals {
		arrivals[i] = students * jobsPerStudentHour
	}
	fmt.Fprintf(&sb, "%-6s %-16s %-14s %-14s %s\n",
		"GPUs", "students:GPU", "mean wait (h)", "p95 wait (h)", "utilization")
	for _, gpus := range []int{1, 2, 4, 8, 16, 32} {
		res := autoscale.Simulate(arrivals, time.Unix(0, 0), svcRate, autoscale.Static{N: gpus})
		fmt.Fprintf(&sb, "%-6d %-16.1f %-14.2f %-14.2f %.1f%%\n",
			gpus, students/float64(gpus), res.MeanWaitHours, res.P95WaitHours, res.UtilizationPct)
	}
	sb.WriteString("\n8 GPUs serve 112 concurrent students (14:1) with sub-hour waits —\n")
	sb.WriteString("far fewer devices than users, as the paper argues.\n")
	return sb.String()
}

// ---- D2: provisioning ----------------------------------------------------------------

// Provisioning compares static, scheduled (the paper's manual practice),
// reactive, and hybrid scaling against the HPC-cluster baseline over the
// full Figure 1 course.
func Provisioning() string {
	var sb strings.Builder
	sb.WriteString("== D2: provisioning policies over the 2015 course (Figure 1 load) ==\n\n")
	m := workload.Figure1Model()
	arrivals := workload.SubmissionArrivals(m.HourlySeries(), 2.0)
	const svcRate = 30.0

	peak := 0.0
	for _, a := range arrivals {
		if a > peak {
			peak = a
		}
	}
	staticN := int(peak/svcRate) + 1

	policies := []autoscale.Policy{
		autoscale.Static{N: staticN},
		autoscale.Scheduled{Base: staticN / 4, Boost: staticN,
			BoostDays: map[time.Weekday]bool{time.Wednesday: true, time.Thursday: true}},
		autoscale.Reactive{PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: staticN},
		autoscale.Hybrid{
			Sched: autoscale.Scheduled{Base: 1, Boost: staticN / 2,
				BoostDays: map[time.Weekday]bool{time.Wednesday: true, time.Thursday: true}},
			Reactive: autoscale.Reactive{PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: staticN},
		},
	}
	fmt.Fprintf(&sb, "%-12s %-14s %-12s %-14s %-14s %s\n",
		"policy", "worker-hours", "peak fleet", "mean wait(h)", "p95 wait(h)", "utilization")
	var staticCost float64
	for _, p := range policies {
		res := autoscale.Simulate(arrivals, m.Start, svcRate, p)
		if p.Name() == "static" {
			staticCost = res.WorkerHours
		}
		fmt.Fprintf(&sb, "%-12s %-14.0f %-12d %-14.2f %-14.2f %.1f%%\n",
			res.Policy, res.WorkerHours, res.PeakWorkers, res.MeanWaitHours,
			res.P95WaitHours, res.UtilizationPct)
	}

	// HPC cluster baseline.
	ccfg := cluster.DefaultConfig(0)
	ccfg.Nodes = cluster.SizeForPeak(arrivals, ccfg)
	cres := cluster.Simulate(arrivals, ccfg)
	fmt.Fprintf(&sb, "%-12s %-14.0f %-12d %-14.2f %-14.2f %.1f%%   (shared campus cluster)\n",
		"hpc-cluster", cres.NodeHours, ccfg.Nodes, cres.MeanWaitHours,
		cres.P95WaitHours, cres.UtilizationPct)

	reactive := autoscale.Simulate(arrivals, m.Start, svcRate,
		autoscale.Reactive{PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: staticN})
	fmt.Fprintf(&sb, "\nelastic scaling uses %.0f%% of the static fleet's worker-hours at\n",
		100*reactive.WorkerHours/staticCost)
	sb.WriteString("comparable p95 wait — the §II-C argument: static provisioning for the\n")
	sb.WriteString("course start is mostly idle by the end.\n")
	return sb.String()
}

// ---- D3: dispatch models ---------------------------------------------------------------

// Dispatch contrasts v1 push dispatch (jobs fail when their worker dies)
// with v2 poll dispatch (the broker's visibility timeout redelivers the
// lease to a surviving worker).
func Dispatch() string {
	var sb strings.Builder
	sb.WriteString("== D3: push (v1) vs poll (v2) dispatch under worker churn ==\n\n")

	// v2: lease a job, "crash" the worker (never ack), watch redelivery.
	b := queue.NewBroker()
	bnow := time.Unix(0, 0)
	b.SetClock(func() time.Time { return bnow })
	job := &worker.Job{ID: "job-1", LabID: "vector-add",
		Source: labs.ByID("vector-add").Reference, DatasetID: 0}
	_, _ = b.Publish(worker.TopicJobs, worker.EncodeJob(job))
	d1, ok, _ := b.Poll(worker.TopicJobs, "doomed-worker", map[string]bool{"cuda": true}, 30*time.Second)
	fmt.Fprintf(&sb, "v2: doomed worker leased the job: %v (attempt %d)\n", ok, d1.Msg.Attempts)
	bnow = bnow.Add(31 * time.Second) // the worker died; its lease expires
	d2, ok, _ := b.Poll(worker.TopicJobs, "healthy-worker", map[string]bool{"cuda": true}, 30*time.Second)
	fmt.Fprintf(&sb, "v2: after lease expiry a healthy worker received it: %v (attempt %d)\n", ok, d2.Msg.Attempts)
	node := worker.NewNode(worker.DefaultNodeConfig("healthy-worker"))
	res := node.Execute(context.Background(), job)
	_ = d2.Ack()
	fmt.Fprintf(&sb, "v2: job completed correctly after redelivery: %v\n", res.Correct())
	fmt.Fprintf(&sb, "v2: broker stats: %+v\n\n", b.Stats())

	// v1: the registry evicts silent workers; jobs dispatched meanwhile
	// fail fast with no automatic retry.
	reg := worker.NewRegistry(30 * time.Second)
	now := time.Unix(0, 0)
	reg.SetClock(func() time.Time { return now })
	reg.Register(worker.NewNode(worker.DefaultNodeConfig("w1")))
	fmt.Fprintf(&sb, "v1: pool = %v\n", reg.Alive())
	now = now.Add(45 * time.Second) // w1 stops sending health checks
	_, err := reg.Dispatch(context.Background(), job)
	fmt.Fprintf(&sb, "v1: after missed health checks, pool = %v, dispatch error: %v\n",
		reg.Alive(), err)
	fmt.Fprintf(&sb, "v1: evictions = %d; the web tier must retry the job itself\n", reg.Evictions())
	sb.WriteString("\nthe poll model decouples job durability from worker liveness, which is\n")
	sb.WriteString("what lets v2 'more freely perform automatic scaling' (§VI-A).\n")
	return sb.String()
}

// ---- D4: peer review ---------------------------------------------------------------------

// PeerReview sweeps retention and reports review starvation, reproducing
// the §IV-D failure that forced the weight from 10% to 5% to 0.
func PeerReview() string {
	var sb strings.Builder
	sb.WriteString("== D4: peer-review starvation vs retention (§IV-D) ==\n\n")
	rng := rand.New(rand.NewSource(2014))
	students := make([]string, 2000)
	for i := range students {
		students[i] = fmt.Sprintf("s%04d", i)
	}
	as, err := peerreview.AssignRandom("tiled-matmul", students, 3, rng)
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&sb, "%d students, 3 random reviews each (the 2014 offering's scheme)\n\n", len(students))
	fmt.Fprintf(&sb, "%-12s %-18s %-22s %s\n",
		"retention", "reviews by active", "active getting none", "starvation")
	for _, retention := range []float64{0.90, 0.50, 0.30, 0.15, 0.05, 0.03} {
		active := map[string]bool{}
		for i, s := range students {
			if float64(i) < retention*float64(len(students)) {
				active[s] = true
			}
		}
		st := peerreview.Starvation(as, active)
		fmt.Fprintf(&sb, "%-12s %-18d %-22d %.1f%%\n",
			fmt.Sprintf("%.0f%%", 100*retention), st.ReviewsByActive,
			st.ActiveGettingNone, 100*st.StarvationRate)
	}
	sb.WriteString("\nat the course's ~3% completion rate (Table I), nearly every active\n")
	sb.WriteString("student reviews without being reviewed — the complaint that drove the\n")
	sb.WriteString("weight from 10% (2014) to 5% and then removal (2015).\n")
	return sb.String()
}

// ---- D5: security ---------------------------------------------------------------------------

// Security compares the raw and preprocessed blacklist scan modes on a
// corpus of submissions and measures scan throughput.
func Security() string {
	var sb strings.Builder
	sb.WriteString("== D5: blacklist scanning modes (§III-D) ==\n\n")

	type sample struct {
		name      string
		source    string
		malicious bool
	}
	corpus := []sample{
		{"clean vector-add", labs.ByID("vector-add").Reference, false},
		{"clean tiled matmul", labs.ByID("tiled-matmul").Reference, false},
		{"inline assembly", `__global__ void k(float *a){ asm("mov"); }`, true},
		{"system() call", `__global__ void k(float *a){ } void host() { system("rm"); }`, true},
		{"asm in a comment", "// never call asm() here\n" + labs.ByID("vector-add").Reference, false},
		{"fork in block comment", "/* fork bombs are bad */\n" + labs.ByID("vector-add").Reference, false},
	}
	raw := sandbox.NewScanner(nil, sandbox.ScanRaw)
	pp := sandbox.NewScanner(nil, sandbox.ScanPreprocessed)

	fmt.Fprintf(&sb, "%-26s %-11s %-14s %s\n", "submission", "malicious", "raw scan", "preprocessed scan")
	rawFP, ppFP := 0, 0
	for _, c := range corpus {
		r := raw.Check(c.source) != nil
		p := pp.Check(c.source) != nil
		verdict := func(rejected bool) string {
			if rejected {
				return "REJECTED"
			}
			return "accepted"
		}
		if r && !c.malicious {
			rawFP++
		}
		if p && !c.malicious {
			ppFP++
		}
		fmt.Fprintf(&sb, "%-26s %-11v %-14s %s\n", c.name, c.malicious, verdict(r), verdict(p))
	}
	fmt.Fprintf(&sb, "\nfalse positives: raw=%d preprocessed=%d  (the paper: raw mode 'rejects\n", rawFP, ppFP)
	sb.WriteString("code which contains the black listed functions even within comments')\n\n")

	// Throughput.
	src := labs.ByID("tiled-matmul").Reference
	const n = 2000
	start := time.Now()
	for i := 0; i < n; i++ {
		_ = raw.Scan(src)
	}
	rawRate := float64(n) / time.Since(start).Seconds()
	start = time.Now()
	for i := 0; i < n; i++ {
		_ = pp.Scan(src)
	}
	ppRate := float64(n) / time.Since(start).Seconds()
	fmt.Fprintf(&sb, "scan throughput: raw %.0f submissions/s, preprocessed %.0f submissions/s\n",
		rawRate, ppRate)

	// Runtime whitelist demonstration.
	mon := sandbox.NewMonitor(sandbox.DefaultPolicy())
	_ = mon.Call("write")
	err := mon.Call("socket")
	fmt.Fprintf(&sb, "\nruntime whitelist: write allowed; socket -> %v; job killed: %v\n",
		err != nil, mon.Killed())
	return sb.String()
}

// ---- D6: tag-aware dispatch -------------------------------------------------------------------

// Tags compares fleet cost with tag-aware dispatch (mixed fleet) against
// provisioning every worker for the most demanding lab (§VI-A: no need to
// "provision our worker nodes to have the resources for the highest
// common multiple for the system requirements of the labs").
func Tags() string {
	var sb strings.Builder
	sb.WriteString("== D6: tag-aware dispatch vs max-spec fleet (§VI-A) ==\n\n")

	// Job mix from Table II course usage: most jobs are plain CUDA labs;
	// a small share needs MPI + 2 GPUs.
	const totalJobs = 1000.0
	const mpiShare = 0.05
	const plainCostPerHour = 1.0 // 1-GPU node
	const bigCostPerHour = 2.6   // 2-GPU node with MPI image
	const jobsPerNodeHour = 30.0

	plainJobs := totalJobs * (1 - mpiShare)
	mpiJobs := totalJobs * mpiShare

	// Max-spec: every worker is a big node.
	maxSpecHours := (plainJobs + mpiJobs) / jobsPerNodeHour
	maxSpecCost := maxSpecHours * bigCostPerHour

	// Tagged: plain nodes for plain jobs, big nodes only for MPI jobs.
	taggedCost := plainJobs/jobsPerNodeHour*plainCostPerHour + mpiJobs/jobsPerNodeHour*bigCostPerHour

	fmt.Fprintf(&sb, "job mix: %.0f plain CUDA jobs, %.0f MPI/multi-GPU jobs\n\n", plainJobs, mpiJobs)
	fmt.Fprintf(&sb, "%-28s %-14s %s\n", "fleet", "node-hours", "cost (relative $)")
	fmt.Fprintf(&sb, "%-28s %-14.1f %.1f\n", "max-spec (all 2-GPU+MPI)", maxSpecHours, maxSpecCost)
	fmt.Fprintf(&sb, "%-28s %-14.1f %.1f\n", "tagged mixed fleet", maxSpecHours, taggedCost)
	fmt.Fprintf(&sb, "\ntagged dispatch saves %.0f%% of fleet cost for this mix\n",
		100*(1-taggedCost/maxSpecCost))

	// And it works: demonstrated live in Figure 6's tag routing.
	sb.WriteString("(functional demonstration: see -exp figure6 tag routing)\n")
	return sb.String()
}

// ---- D7: limits --------------------------------------------------------------------------------

// Limits demonstrates the fairness controls of §III-C: the submission
// rate limit and the execution time limit.
func Limits() string {
	var sb strings.Builder
	sb.WriteString("== D7: submission-rate and execution-time limits (§III-C) ==\n\n")

	// Rate limit: an abusive client hammers submit.
	rl := sandbox.NewRateLimiter(10 * time.Second)
	now := time.Unix(0, 0)
	rl.SetClock(func() time.Time { return now })
	admitted, rejected := 0, 0
	for i := 0; i < 60; i++ {
		if rl.Admit("abuser") == nil {
			admitted++
		} else {
			rejected++
		}
		now = now.Add(time.Second)
	}
	fmt.Fprintf(&sb, "60 submissions in 60s against a 10s interval: %d admitted, %d rejected\n",
		admitted, rejected)

	// Execution limit: an infinite loop is cut off deterministically.
	spin := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  float x = 0.0f;
  while (1) { x += 1.0f; }
  out[0] = x;
}`
	o := labs.Run(context.Background(), labs.ByID("vector-add"), spin, 0, labs.NewDeviceSet(1), 100000)
	fmt.Fprintf(&sb, "infinite-loop kernel: compiled=%v, runtime error: %s\n", o.Compiled, o.RuntimeError)

	// Limits are per-lab adjustable.
	l := sandbox.DefaultLimits()
	fmt.Fprintf(&sb, "\ndefault per-lab limits: compile %v, run %v, %d steps/thread, %dKB output,\n",
		l.CompileTimeout, l.RunTimeout, l.MaxSteps, l.MaxOutputBytes/1024)
	fmt.Fprintf(&sb, "submit interval %v — all adjustable per lab (§III-C)\n", l.SubmitInterval)
	_ = minicuda.DefaultMaxSteps
	return sb.String()
}
