package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run to completion and contain the markers that tie
// it to the paper's reported result. These are the end-to-end smoke tests
// of the whole reproduction.

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("experiments = %d, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Name == "" || e.Run == nil || e.Paper == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if ByID("table1") == nil || ByID("nope") != nil {
		t.Error("ByID broken")
	}
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"36896", "2729", "7.40%", "3.15%", "442",
		"Reproduced", "stochastic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFigure1(t *testing.T) {
	out := Figure1()
	for _, want := range []string{"peak:", "trough:", "Wednesday", "daily peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	out := Table2()
	if got := strings.Count(out, "PASS"); got != 15 {
		t.Fatalf("Table2 has %d PASS rows, want 15:\n%s", got, out)
	}
	for _, want := range []string{"Vector Addition", "Multi-GPU Stencil with MPI",
		"PUMPS", "shared memory tiling"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	if strings.Contains(out, "0/") {
		t.Errorf("some lab failed datasets:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	out := Figure2()
	if strings.Contains(out, "ERROR") {
		t.Fatalf("Figure2 errored:\n%s", out)
	}
	if !strings.Contains(out, "correct results relayed:    16/16") {
		t.Errorf("Figure2 lost jobs:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	out := Figure3()
	if strings.Contains(out, "MISSING") {
		t.Errorf("Figure3 missing UI elements:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	out := Figure4()
	if !strings.Contains(out, "3 revisions retained") {
		t.Errorf("Figure4:\n%s", out)
	}
}

func TestFigure5(t *testing.T) {
	out := Figure5()
	for _, want := range []string{"ada@example.edu", "bob@example.edu", "attempts"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6(t *testing.T) {
	out := Figure6()
	if strings.Contains(out, "ERROR") {
		t.Fatalf("Figure6 errored:\n%s", out)
	}
	for _, want := range []string{"16/16", "standby broker", "MPI job still queued: 1",
		"completed 1 job(s); backlog now 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7(t *testing.T) {
	out := Figure7()
	if strings.Contains(out, "ERROR") {
		t.Fatalf("Figure7 errored:\n%s", out)
	}
	if !strings.Contains(out, "0 allocations leaked") {
		t.Errorf("Figure7 leak check:\n%s", out)
	}
}

func TestGPURatio(t *testing.T) {
	out := GPURatio()
	if !strings.Contains(out, "14.0") { // 112/8 students per GPU row
		t.Errorf("GPURatio missing the 8-GPU row:\n%s", out)
	}
}

func TestProvisioning(t *testing.T) {
	out := Provisioning()
	for _, want := range []string{"static", "scheduled", "reactive", "hybrid", "hpc-cluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("Provisioning missing %q", want)
		}
	}
}

func TestDispatch(t *testing.T) {
	out := Dispatch()
	for _, want := range []string{"attempt 2", "completed correctly after redelivery: true",
		"dispatch error"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dispatch missing %q:\n%s", want, out)
		}
	}
}

func TestPeerReviewExperiment(t *testing.T) {
	out := PeerReview()
	if !strings.Contains(out, "starvation") {
		t.Errorf("PeerReview:\n%s", out)
	}
}

func TestSecurityExperiment(t *testing.T) {
	out := Security()
	for _, want := range []string{"false positives: raw=2 preprocessed=0", "REJECTED",
		"scan throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("Security missing %q:\n%s", want, out)
		}
	}
}

func TestTagsExperiment(t *testing.T) {
	out := Tags()
	if !strings.Contains(out, "saves") {
		t.Errorf("Tags:\n%s", out)
	}
}

func TestHintsExperiment(t *testing.T) {
	out := Hints()
	for _, want := range []string{"missing bounds check", "Out-of-bounds", "Barrier divergence",
		"__syncthreads()", "time limit", "no shared-memory tiling"} {
		if !strings.Contains(out, want) {
			t.Errorf("Hints missing %q:\n%s", want, out)
		}
	}
}

func TestLimitsExperiment(t *testing.T) {
	out := Limits()
	for _, want := range []string{"6 admitted, 54 rejected", "time limit"} {
		if !strings.Contains(out, want) {
			t.Errorf("Limits missing %q:\n%s", want, out)
		}
	}
}
