package platform

import (
	"fmt"
	"strings"

	"webgpu/internal/castore"
	"webgpu/internal/overload"
	"webgpu/internal/progcache"
)

// Status is the administrator-dashboard snapshot of §VI-A ("An
// information dashboard is available to the system administrators to
// track the system status").
type Status struct {
	Architecture  string
	Workers       int
	DBSeq         uint64
	ReplicaLag    uint64 // v2
	BrokerBacklog int    // v2: jobs waiting
	BrokerStats   string // v2
	StandbyDepth  int    // v2: mirrored jobs on the standby broker
	Evictions     int64  // v1: workers dropped for missed health checks
	GradebookRows int64
	ProgCache     progcache.Stats // compiled-program cache effectiveness

	// Artifacts is the durable store's view; HasArtifacts distinguishes a
	// memory-only deployment from a store with all-zero counters.
	Artifacts    castore.Stats
	HasArtifacts bool

	// Pressure and SLO are the overload-survival view: system pressure
	// in [0, ∞) and the per-class admission/shed/burn snapshot.
	Pressure float64
	SLO      []overload.SLOStatus
}

// Status captures the current system state.
func (p *Platform) Status() Status {
	s := Status{
		Architecture:  p.Arch.String(),
		Workers:       p.Workers(),
		DBSeq:         p.DB.Seq(),
		GradebookRows: p.Gradebook.Writes(),
		ProgCache:     p.progs.Stats(),
		Pressure:      p.overload.Pressure(),
		SLO:           p.overload.SLOStatuses(),
	}
	if p.store != nil {
		s.Artifacts = p.store.Stats()
		s.HasArtifacts = true
	}
	switch p.Arch {
	case V1:
		s.Evictions = p.Registry.Evictions()
	default:
		s.ReplicaLag = p.Replica.Lag()
		s.BrokerBacklog = p.Broker.Backlog("jobs")
		s.BrokerStats = fmt.Sprintf("%+v", p.Broker.Stats())
		s.StandbyDepth = p.StandbyBroker.Depth("jobs")
	}
	return s
}

// Render formats the snapshot as the dashboard text view.
func (s Status) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "architecture:   %s\n", s.Architecture)
	fmt.Fprintf(&sb, "workers:        %d\n", s.Workers)
	fmt.Fprintf(&sb, "db commits:     %d\n", s.DBSeq)
	fmt.Fprintf(&sb, "gradebook rows: %d\n", s.GradebookRows)
	fmt.Fprintf(&sb, "prog cache:     %d hits, %d misses, %d coalesced, %d evicted, %d cached\n",
		s.ProgCache.Hits, s.ProgCache.Misses, s.ProgCache.Coalesced, s.ProgCache.Evictions, s.ProgCache.Size)
	// Enumerate every artifact kind the cache can serve, zeros included:
	// a kind that never appears on the dashboard cannot be told apart
	// from one that was never wired up.
	hitsByKind := map[string]int64{
		"ast":           s.ProgCache.HitsAST,
		"bytecode":      s.ProgCache.HitsBytecode,
		"bytecode-warp": s.ProgCache.HitsBytecodeWarp,
		"diagnostics":   s.ProgCache.HitsDiagnostics,
	}
	parts := make([]string, 0, len(hitsByKind))
	for _, kind := range progcache.ArtifactKinds() {
		parts = append(parts, fmt.Sprintf("%d %s hits", hitsByKind[kind], kind))
	}
	fmt.Fprintf(&sb, "prog artifacts: %s, %d bytecode bytes cached\n",
		strings.Join(parts, ", "), s.ProgCache.BytecodeBytes)
	fmt.Fprintf(&sb, "kernelcheck:    %d analyses, %d diagnostic hits\n",
		s.ProgCache.Analyzes, s.ProgCache.HitsDiagnostics)
	if s.HasArtifacts {
		fmt.Fprintf(&sb, "artifact store: %d objects (%d B), %d hits, %d misses, %d disk-warm programs (%d preloaded), %d corrupt quarantined, %d gc-removed\n",
			s.Artifacts.Objects, s.Artifacts.DiskBytes, s.Artifacts.Hits, s.Artifacts.Misses,
			s.ProgCache.DiskHits, s.ProgCache.Preloaded, s.Artifacts.Quarantined, s.Artifacts.GCRemoved)
	} else {
		fmt.Fprintf(&sb, "artifact store: absent (memory-only cache)\n")
	}
	fmt.Fprintf(&sb, "pressure:       %.2f\n", s.Pressure)
	for _, slo := range s.SLO {
		fmt.Fprintf(&sb, "slo %-11s %.0f admitted, %.0f shed, %d inflight, burn %.2f fast / %.2f slow (target %.3f)\n",
			slo.Name+":", slo.Admitted, slo.Shed, slo.Inflight, slo.FastBurn, slo.SlowBurn, slo.Target)
	}
	if s.BrokerStats != "" {
		fmt.Fprintf(&sb, "broker backlog: %d (standby mirror depth %d)\n", s.BrokerBacklog, s.StandbyDepth)
		fmt.Fprintf(&sb, "broker stats:   %s\n", s.BrokerStats)
		fmt.Fprintf(&sb, "replica lag:    %d commits\n", s.ReplicaLag)
	} else {
		fmt.Fprintf(&sb, "evictions:      %d\n", s.Evictions)
	}
	return sb.String()
}
