package platform

import (
	"fmt"
	"strings"
)

// Status is the administrator-dashboard snapshot of §VI-A ("An
// information dashboard is available to the system administrators to
// track the system status").
type Status struct {
	Architecture  string
	Workers       int
	DBSeq         uint64
	ReplicaLag    uint64 // v2
	BrokerBacklog int    // v2: jobs waiting
	BrokerStats   string // v2
	StandbyDepth  int    // v2: mirrored jobs on the standby broker
	Evictions     int64  // v1: workers dropped for missed health checks
	GradebookRows int64
}

// Status captures the current system state.
func (p *Platform) Status() Status {
	s := Status{
		Architecture:  p.Arch.String(),
		Workers:       p.Workers(),
		DBSeq:         p.DB.Seq(),
		GradebookRows: p.Gradebook.Writes(),
	}
	switch p.Arch {
	case V1:
		s.Evictions = p.Registry.Evictions()
	default:
		s.ReplicaLag = p.Replica.Lag()
		s.BrokerBacklog = p.Broker.Backlog("jobs")
		s.BrokerStats = fmt.Sprintf("%+v", p.Broker.Stats())
		s.StandbyDepth = p.StandbyBroker.Depth("jobs")
	}
	return s
}

// Render formats the snapshot as the dashboard text view.
func (s Status) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "architecture:   %s\n", s.Architecture)
	fmt.Fprintf(&sb, "workers:        %d\n", s.Workers)
	fmt.Fprintf(&sb, "db commits:     %d\n", s.DBSeq)
	fmt.Fprintf(&sb, "gradebook rows: %d\n", s.GradebookRows)
	if s.BrokerStats != "" {
		fmt.Fprintf(&sb, "broker backlog: %d (standby mirror depth %d)\n", s.BrokerBacklog, s.StandbyDepth)
		fmt.Fprintf(&sb, "broker stats:   %s\n", s.BrokerStats)
		fmt.Fprintf(&sb, "replica lag:    %d commits\n", s.ReplicaLag)
	} else {
		fmt.Fprintf(&sb, "evictions:      %d\n", s.Evictions)
	}
	return sb.String()
}
