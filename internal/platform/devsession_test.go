package platform

import (
	"net/http/httptest"
	"testing"
	"time"

	"webgpu/internal/labs"
)

// TestDevSessionSharesWorkerProgCache: a draft pushed through the live
// development loop compiles into the same content-addressed cache the
// worker tier uses, so the eventual submission of that source is a warm
// hit — the wiring the platform is responsible for.
func TestDevSessionSharesWorkerProgCache(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	c := newClient(t, ts.URL)
	c.register("Ada", "ada@example.edu", "student")
	src := labs.ByID("vector-add").Reference

	var sess struct {
		SessionID string `json:"session_id"`
		DraftURL  string `json:"draft_url"`
	}
	c.mustDo("POST", "/api/v1/labs/vector-add/session", nil, &sess)
	c.mustDo("POST", sess.DraftURL, map[string]string{"source": src}, nil)

	// The draft analysis runs asynchronously; wait for the compile to
	// land in the shared cache.
	deadline := time.Now().Add(10 * time.Second)
	for p.ProgCache().Stats().Compiles == 0 {
		if time.Now().After(deadline) {
			t.Fatal("draft never compiled into the platform cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Server.DevSessions().Active() != 1 {
		t.Fatalf("Active sessions = %d, want 1", p.Server.DevSessions().Active())
	}

	// The worker-tier submission of the same source must be a cache hit,
	// not a recompile.
	before := p.ProgCache().Stats()
	c.mustDo("POST", "/api/v1/labs/vector-add/save", map[string]string{"source": src}, nil)
	c.mustDo("POST", "/api/v1/labs/vector-add/submit", nil, nil)
	after := p.ProgCache().Stats()
	if after.Compiles != before.Compiles {
		t.Fatalf("submit recompiled (compiles %d -> %d); dev session cache not shared",
			before.Compiles, after.Compiles)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("submit did not hit the cache (hits %d -> %d)", before.Hits, after.Hits)
	}

	// Platform shutdown closes the session registry.
	p.Close()
	if n := p.Server.DevSessions().Active(); n != 0 {
		t.Fatalf("Active sessions after Close = %d, want 0", n)
	}
}
