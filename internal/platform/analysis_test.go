package platform

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"webgpu/internal/webserver"
)

// TestAnalysisEndToEnd drives one curated vector-add variant per
// analyzer pass through the complete platform — submit over HTTP, job
// through the broker, result back — and asserts the submission response
// carries the expected diagnostic and the grade feedback repeats it.
func TestAnalysisEndToEnd(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	variants := []struct {
		pass   string
		rule   string
		source string
	}{
		{"barrier-divergence", "KC-BARRIER-DIV", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (threadIdx.x < 32) {
    __syncthreads();
  }
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`},
		{"shared-race", "KC-RACE", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  __shared__ float s[257];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in1[i];
  out[i] = s[tx + 1] + in2[i];
}
`},
		{"bounds", "KC-OOB", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  __shared__ float s[32];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  s[40] = 1.0f;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`},
		{"performance", "KC-BANK", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  __shared__ float sh[512];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  sh[tx * 2] = 1.0f;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`},
		{"hygiene", "KC-UNUSED", `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int spare = len * 2;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`},
	}

	for vi, v := range variants {
		v := v
		t.Run(v.pass, func(t *testing.T) {
			// One account per variant sidesteps the submission rate limit.
			c := newClient(t, ts.URL)
			c.register(v.pass, fmt.Sprintf("kc%d@example.edu", vi), "student")
			var sub webserver.SubmissionRec
			c.mustDo("POST", "/api/labs/vector-add/submit",
				map[string]string{"source": v.source}, &sub)

			found := false
			for _, d := range sub.Diagnostics {
				if d.ID == v.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("submission response missing %s; got %+v", v.rule, sub.Diagnostics)
			}
			if sub.Grade == nil {
				t.Fatal("no grade on submission")
			}
			inFeedback := false
			for _, line := range sub.Grade.Feedback {
				if strings.Contains(line, v.rule) {
					inFeedback = true
				}
			}
			if !inFeedback {
				t.Errorf("grade feedback missing %s: %v", v.rule, sub.Grade.Feedback)
			}
			if sub.AnalysisBlocked {
				t.Error("warn-only default blocked execution")
			}
		})
	}

	// The shared metrics registry saw the per-rule fires, and the
	// dashboard enumerates the diagnostics artifact kind (even if its
	// hit count is still zero).
	if got := p.Metrics().Counter("kernelcheck_fire_kc_race"); got < 1 {
		t.Errorf("kernelcheck_fire_kc_race = %g, want >= 1", got)
	}
	out := p.Status().Render()
	if !strings.Contains(out, "diagnostics hits") {
		t.Errorf("dashboard missing the diagnostics artifact kind:\n%s", out)
	}
	if !strings.Contains(out, "kernelcheck:") {
		t.Errorf("dashboard missing the kernelcheck line:\n%s", out)
	}
}
