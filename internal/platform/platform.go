// Package platform composes the WebGPU system in both of the paper's
// generations:
//
//   - V1 (§III, Figure 2): web server ¬ + database ­ + a registry of
//     worker nodes ® that the web server pushes jobs to, with worker
//     health checks and eviction.
//   - V2 (§VI, Figures 6-7): front end + replicated message broker that
//     autoscalable worker fleets poll, a replicated database, and a
//     remote worker configuration service.
//
// Both expose the same student/instructor HTTP interface; tests and the
// benchmark harness run identical flows against either.
package platform

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"webgpu/internal/castore"
	"webgpu/internal/db"
	"webgpu/internal/faultinject"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/overload"
	"webgpu/internal/peerreview"
	"webgpu/internal/progcache"
	"webgpu/internal/queue"
	"webgpu/internal/sandbox"
	"webgpu/internal/trace"
	"webgpu/internal/webserver"
	"webgpu/internal/worker"
)

// Architecture selects the system generation.
type Architecture int

// Architectures.
const (
	V1 Architecture = iota + 1
	V2
)

func (a Architecture) String() string {
	if a == V2 {
		return "v2 (broker + polling workers)"
	}
	return "v1 (push dispatch)"
}

// Options configures a platform instance.
type Options struct {
	Arch          Architecture
	Workers       int
	GPUsPerWorker int
	Course        labs.Course
	ScanMode      sandbox.ScanMode
	ReviewWeight  float64
	DispatchWait  time.Duration // v2: how long to wait for a result
	Visibility    time.Duration // v2: job lease duration (0 = default)

	// Faults threads a fault-injection registry through the deployment:
	// broker, workers, dispatch, and result routing. Nil disables
	// injection at zero cost.
	Faults *faultinject.Registry

	// Overload tunes the web tier's admission controller (priority-class
	// load shedding, per-tenant rate limits, burn-rate SLOs). Nil uses
	// the controller defaults. The platform wires the broker backlog and
	// live-session load as its backpressure signals either way.
	Overload *overload.Config

	// Limits overrides the web tier's sandbox limits (the §III-C
	// per-user submission interval); zero keeps the defaults. Benchmarks
	// shorten the interval so a spike exercises the admission layer, not
	// the 10-second per-user limiter.
	Limits sandbox.Limits

	// CacheDir, when set, opens a durable content-addressed artifact
	// store (internal/castore) at this path and wires the progcache
	// through it: misses read through to disk before compiling,
	// successful compiles write through, and a restart against the same
	// directory warm-starts instead of recompiling the course's working
	// set. Deployments (or shards) sharing a directory share compiles.
	CacheDir string

	// CacheMaxBytes bounds the artifact store's on-disk footprint
	// (least-recently-accessed entries are collected first); 0 disables
	// the bound.
	CacheMaxBytes int64

	// PreloadHottest eagerly decodes the store's N most-accessed
	// programs into memory at boot; 0 relies on lazy read-through only.
	PreloadHottest int
}

// Platform is a running WebGPU deployment.
type Platform struct {
	Arch      Architecture
	DB        *db.DB
	Replica   *db.Replica // v2 only
	Server    *webserver.Server
	Gradebook *grader.CourseraBook
	Reviews   *peerreview.Store

	// v1
	Registry *worker.Registry

	// v2
	Broker        *queue.Broker
	StandbyBroker *queue.Broker
	ConfigServer  *worker.ConfigServer
	Fleet         *worker.Fleet
	router        *resultRouter

	opts          Options
	progs         *progcache.Cache  // shared by every worker node of this deployment
	store         *castore.Store    // durable artifact tier under progs; nil without CacheDir
	metrics       *metrics.Registry // one registry across web tier + every node
	traces        *trace.Store      // recent job traces, behind /api/admin/traces
	overload      *overload.Controller
	mu            sync.Mutex
	v1Count       int
	closed        bool
	stopHeartbeat func()
}

// New builds and starts a platform.
func New(opts Options) *Platform {
	if opts.Arch == 0 {
		opts.Arch = V2
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.GPUsPerWorker <= 0 {
		opts.GPUsPerWorker = 2
	}
	if opts.Course == "" {
		opts.Course = labs.CourseHPP
	}
	if opts.DispatchWait <= 0 {
		opts.DispatchWait = 2 * time.Minute
	}

	p := &Platform{
		Arch:      opts.Arch,
		DB:        db.New(),
		Gradebook: grader.NewCourseraBook(string(opts.Course)),
		Reviews:   peerreview.NewStore(opts.ReviewWeight),
		opts:      opts,
		progs:     progcache.New(progcache.DefaultCapacity, nil),
		metrics:   metrics.NewRegistry(),
		traces:    trace.NewStore(0),
	}
	if opts.CacheDir != "" {
		store, err := castore.Open(opts.CacheDir, castore.Options{
			MaxBytes: opts.CacheMaxBytes,
			Metrics:  p.metrics,
			Faults:   opts.Faults,
		})
		if err != nil {
			// A broken cache directory must not stop the platform from
			// serving — it boots memory-only and /healthz reports the
			// castore component absent.
			log.Printf("platform: artifact store at %s unavailable, running memory-only: %v",
				opts.CacheDir, err)
		} else {
			p.store = store
			p.progs.SetStore(store)
			if n := opts.PreloadHottest; n > 0 {
				p.progs.WarmStart(n)
			}
		}
	}
	// Lazy gauges: subsystems with their own stats structs refresh on
	// each metrics export instead of pushing on every event.
	p.metrics.AddCollector(func(r *metrics.Registry) {
		s := p.progs.Stats()
		r.Set("progcache_entries", float64(s.Size))
		r.Set("progcache_evictions", float64(s.Evictions))
		r.Set("progcache_hits_bytecode", float64(s.HitsBytecode))
		r.Set("progcache_hits_bytecode_warp", float64(s.HitsBytecodeWarp))
		r.Set("progcache_hits_ast", float64(s.HitsAST))
		r.Set("progcache_hits_diagnostics", float64(s.HitsDiagnostics))
		r.Set("progcache_bytecode_bytes", float64(s.BytecodeBytes))
		r.Set("progcache_disk_hits", float64(s.DiskHits))
		r.Set("progcache_disk_diag_hits", float64(s.DiskDiagHits))
		r.Set("progcache_preloaded", float64(s.Preloaded))
		r.Set("kernelcheck_analyzes", float64(s.Analyzes))
		r.Set("workers", float64(p.Workers()))
	})

	var dispatcher webserver.Dispatcher
	switch opts.Arch {
	case V1:
		p.Registry = worker.NewRegistry(worker.DefaultHealthTTL)
		p.Registry.SetFaults(opts.Faults)
		for i := 0; i < opts.Workers; i++ {
			p.Registry.Register(p.newNode(i + 1))
		}
		p.v1Count = opts.Workers
		// In-process workers still send the §III-C health checks so a
		// long-lived deployment does not evict its own (healthy) pool.
		p.stopHeartbeat = p.Registry.StartHeartbeats(0)
		dispatcher = webserver.DispatcherFunc(p.Registry.Dispatch)
	default:
		p.Broker = queue.NewBroker()
		p.StandbyBroker = queue.NewBroker()
		p.Broker.Mirror(p.StandbyBroker)
		p.Broker.SetFaults(opts.Faults)
		wcfg := worker.DefaultConfig()
		if opts.Visibility > 0 {
			wcfg.Visibility = opts.Visibility
		}
		p.ConfigServer = worker.NewConfigServer(wcfg)
		idx := 0
		p.Fleet = worker.NewFleet(p.Broker, p.ConfigServer, func(id string) *worker.Node {
			idx++
			return p.newNode(idx)
		})
		// Standby and faults must be attached before Scale starts drivers.
		p.Fleet.SetStandby(p.StandbyBroker)
		p.Fleet.SetFaults(opts.Faults)
		p.Fleet.Scale(opts.Workers)
		p.Replica = db.NewReplica(p.DB)
		p.router = newResultRouter(p.Broker, p.StandbyBroker, p.metrics)
		// Broker gauges refresh per scrape, like the progcache ones above.
		p.metrics.AddCollector(func(r *metrics.Registry) {
			bs := p.Broker.Stats()
			r.Set("broker_published", float64(bs.Published))
			r.Set("broker_acked", float64(bs.Acked))
			r.Set("broker_inflight", float64(bs.Inflight))
			r.Set("broker_dead_letters", float64(bs.DeadLetters))
			r.Set("broker_backlog_jobs", float64(p.Broker.Backlog(worker.TopicJobs)))
		})
		dispatcher = webserver.DispatcherFunc(func(ctx context.Context, job *worker.Job) (*worker.Result, error) {
			return p.dispatchV2(ctx, job)
		})
	}

	// Admission control: the broker's job backlog is the deployment's
	// primary backpressure signal (v1 push dispatch has no queue, so the
	// signal stays zero there and pressure comes from the web tier alone).
	ocfg := overload.Config{Metrics: p.metrics}
	if opts.Overload != nil {
		ocfg = *opts.Overload
		if ocfg.Metrics == nil {
			ocfg.Metrics = p.metrics
		}
	}
	ctrl := overload.New(ocfg)
	if p.Broker != nil {
		ctrl.SetQueueDepth(func() int { return p.Broker.Backlog(worker.TopicJobs) })
	}
	p.metrics.AddCollector(ctrl.Collect)
	p.overload = ctrl

	scfg := webserver.Config{
		DB:         p.DB,
		Dispatcher: dispatcher,
		Gradebook:  p.Gradebook,
		Reviews:    p.Reviews,
		Course:     opts.Course,
		Limits:     opts.Limits,
		Metrics:    p.metrics,
		Traces:     p.traces,
		// Live dev sessions compile through the same cache the workers use,
		// so a draft the student later submits is already warm.
		ProgCache: p.progs,
		Artifacts: p.store,
		Overload:  ctrl,
	}
	if p.Broker != nil {
		scfg.Queue = p.Broker
	}
	p.Server = webserver.New(scfg)
	return p
}

func (p *Platform) newNode(i int) *worker.Node {
	cfg := worker.DefaultNodeConfig(fmt.Sprintf("worker-%03d", i))
	cfg.GPUs = p.opts.GPUsPerWorker
	cfg.ScanMode = p.opts.ScanMode
	cfg.ProgCache = p.progs
	cfg.Metrics = p.metrics
	cfg.Faults = p.opts.Faults
	return worker.NewNode(cfg)
}

// Metrics exposes the deployment-wide shared registry.
func (p *Platform) Metrics() *metrics.Registry { return p.metrics }

// Traces exposes the deployment-wide trace ring.
func (p *Platform) Traces() *trace.Store { return p.traces }

// ProgCache exposes the deployment-wide compiled-program cache.
func (p *Platform) ProgCache() *progcache.Cache { return p.progs }

// ArtifactStore exposes the durable artifact store (nil without CacheDir).
func (p *Platform) ArtifactStore() *castore.Store { return p.store }

// Overload exposes the deployment's admission controller.
func (p *Platform) Overload() *overload.Controller { return p.overload }

// Handler returns the HTTP handler of the web tier.
func (p *Platform) Handler() http.Handler { return p.Server.Handler() }

// ResultDuplicates reports how many duplicate results the v2 result
// router dropped (0 on v1, which has no redelivery).
func (p *Platform) ResultDuplicates() int64 {
	if p.router == nil {
		return 0
	}
	return p.router.dedup.Duplicates()
}

// Scale adjusts the worker count: replacing the pool in v1, resizing the
// fleet in v2. This is the operation the paper performed the day before
// each deadline ("We increased the number of GPUs available to WebGPU the
// day before the deadline", §III).
func (p *Platform) Scale(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.Arch {
	case V1:
		for p.v1Count < n {
			p.v1Count++
			p.Registry.Register(p.newNode(p.v1Count))
		}
		for p.v1Count > n && p.v1Count > 0 {
			p.Registry.Deregister(fmt.Sprintf("worker-%03d", p.v1Count))
			p.v1Count--
		}
	default:
		p.Fleet.Scale(n)
	}
}

// Workers reports the current worker count.
func (p *Platform) Workers() int {
	switch p.Arch {
	case V1:
		return p.Registry.Size()
	default:
		return p.Fleet.Size()
	}
}

// Close shuts the platform down.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	if p.Server != nil {
		p.Server.DevSessions().CloseAll()
	}
	if p.stopHeartbeat != nil {
		p.stopHeartbeat()
	}
	if p.Fleet != nil {
		p.Fleet.Stop()
	}
	if p.router != nil {
		p.router.stop()
	}
	if p.Replica != nil {
		p.Replica.Stop()
	}
	if p.Broker != nil {
		p.Broker.Close()
	}
	if p.StandbyBroker != nil {
		p.StandbyBroker.Close()
	}
	if p.store != nil {
		p.store.Close()
	}
	p.DB.Close()
}

// dispatchV2 publishes the job to the broker with the lab's requirement
// tags (plus the trace ID as a non-constraining meta tag) and waits for
// the matching result. A cancelled context abandons the wait — the
// worker-side pipeline observes its own cancellation via the job lease,
// so the web tier does not block on a job its student abandoned.
func (p *Platform) dispatchV2(ctx context.Context, job *worker.Job) (*worker.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tags := job.Requirements
	if job.TraceID == "" {
		job.TraceID = trace.FromContext(ctx).ID()
	}
	if job.TraceID != "" {
		tags = append(append([]string(nil), tags...), queue.MetaTrace(job.TraceID))
	}
	waiter := p.router.register(job.ID)
	if _, err := p.Broker.Publish(worker.TopicJobs, worker.EncodeJob(job), tags...); err != nil {
		p.router.unregister(job.ID)
		return nil, err
	}
	select {
	case res := <-waiter:
		return res, nil
	case <-ctx.Done():
		p.router.unregister(job.ID)
		return nil, ctx.Err()
	case <-time.After(p.opts.DispatchWait):
		p.router.unregister(job.ID)
		return nil, errors.New("platform: timed out waiting for a worker result")
	}
}

// resultRouter pumps the results topic and hands each result to the
// goroutine waiting on its job ID. It is also where the platform enforces
// at-least-once hygiene: a redelivered job's duplicate result is dropped
// (acked but not delivered) via the dedup window, and when the primary
// broker closes the router fails over to the standby mirror.
type resultRouter struct {
	broker  *queue.Broker
	standby *queue.Broker
	metrics *metrics.Registry
	dedup   *worker.ResultDedup
	mu      sync.Mutex
	waiters map[string]chan *worker.Result
	stopCh  chan struct{}
	doneCh  chan struct{}
}

func newResultRouter(b, standby *queue.Broker, m *metrics.Registry) *resultRouter {
	rr := &resultRouter{
		broker:  b,
		standby: standby,
		metrics: m,
		dedup:   worker.NewResultDedup(0),
		waiters: map[string]chan *worker.Result{},
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	go rr.loop()
	return rr
}

func (rr *resultRouter) register(jobID string) chan *worker.Result {
	ch := make(chan *worker.Result, 1)
	rr.mu.Lock()
	rr.waiters[jobID] = ch
	rr.mu.Unlock()
	return ch
}

func (rr *resultRouter) unregister(jobID string) {
	rr.mu.Lock()
	delete(rr.waiters, jobID)
	rr.mu.Unlock()
}

func (rr *resultRouter) loop() {
	defer close(rr.doneCh)
	caps := map[string]bool{}
	broker := rr.broker
	for {
		select {
		case <-rr.stopCh:
			return
		default:
		}
		d, ok, err := broker.Poll(worker.TopicResults, "web-tier", caps, time.Minute)
		if err != nil {
			if errors.Is(err, queue.ErrClosed) {
				// Primary broker gone: the standby mirror holds a copy of
				// every result publish (§VI-A), so switch to it rather
				// than orphaning in-flight waiters.
				if rr.standby != nil && broker != rr.standby {
					broker = rr.standby
					rr.metrics.Inc("router_failovers", 1)
					continue
				}
				return
			}
			// Transient poll failure: back off and keep routing.
			select {
			case <-rr.stopCh:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		if !ok {
			select {
			case <-rr.stopCh:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		res, derr := worker.DecodeResult(d.Msg.Payload)
		if derr != nil {
			_ = d.Nack()
			continue
		}
		// At-least-once means a job that redelivered (worker crash after
		// publish, expired lease) produces a second result. Only the first
		// per job ID counts; duplicates are acked and dropped.
		if !rr.dedup.Accept(res.JobID, res.Attempt) {
			rr.metrics.Inc("broker_duplicate_results", 1)
			_ = d.Ack()
			continue
		}
		rr.mu.Lock()
		ch, found := rr.waiters[res.JobID]
		if found {
			delete(rr.waiters, res.JobID)
		}
		rr.mu.Unlock()
		if found {
			ch <- res
		}
		_ = d.Ack()
	}
}

func (rr *resultRouter) stop() {
	close(rr.stopCh)
	<-rr.doneCh
}
