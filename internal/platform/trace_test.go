package platform

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webgpu/internal/labs"
	"webgpu/internal/trace"
	"webgpu/internal/webserver"
)

// traceFlow submits one graded job and follows its trace ID from the
// submission response to /api/admin/traces/{id}, asserting the span chain
// covers the web tier, the worker pipeline, and the grader.
func traceFlow(t *testing.T, p *Platform) {
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	alice := newClient(t, ts.URL)
	alice.register("Alice", "alice@example.edu", "student")
	src := labs.ByID("vector-add").Reference
	alice.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": src}, nil)

	var sub webserver.SubmissionRec
	alice.mustDo("POST", "/api/labs/vector-add/submit", nil, &sub)
	if sub.TraceID == "" {
		t.Fatal("submission response carries no trace_id")
	}

	// The response header names the same trace.
	req, _ := http.NewRequest("POST", ts.URL+"/api/labs/vector-add/attempt?dataset=0", nil)
	req.Header.Set("Authorization", "Bearer "+alice.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-WebGPU-Trace") == "" {
		t.Error("attempt response has no X-WebGPU-Trace header")
	}

	// Students may not read the admin surface.
	if code, _ := alice.do("GET", "/api/admin/traces/"+sub.TraceID, nil, nil); code != http.StatusForbidden {
		t.Errorf("student trace access = %d, want 403", code)
	}

	prof := newClient(t, ts.URL)
	prof.register("Prof", "prof@example.edu", "instructor")
	var data trace.Data
	prof.mustDo("GET", "/api/admin/traces/"+sub.TraceID, nil, &data)
	if data.ID != sub.TraceID {
		t.Fatalf("trace id = %q, want %q", data.ID, sub.TraceID)
	}
	if len(data.Spans) < 5 {
		t.Fatalf("trace has %d spans, want >= 5: %+v", len(data.Spans), data.Spans)
	}
	names := map[string]bool{}
	for _, sp := range data.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"dispatch", "queue_wait", "admission", "compile", "exec[dataset=0]", "grade"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, keysOf(names))
		}
	}

	// The listing sees it too, newest first.
	var listing struct {
		Total  int          `json:"total"`
		Traces []trace.Data `json:"traces"`
	}
	prof.mustDo("GET", "/api/admin/traces", nil, &listing)
	if listing.Total < 2 || len(listing.Traces) < 2 {
		t.Fatalf("listing = total %d, %d traces", listing.Total, len(listing.Traces))
	}

	// The metrics dump reflects the work, in Prometheus text format.
	code, body := prof.do("GET", "/api/admin/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{"webgpu_jobs_total", "webgpu_web_jobs_dispatched", "webgpu_stage_compile_ms"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTraceEndToEndV1(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 2})
	defer p.Close()
	traceFlow(t, p)
}

func TestTraceEndToEndV2(t *testing.T) {
	p := New(Options{Arch: V2, Workers: 2})
	defer p.Close()
	traceFlow(t, p)
}
