package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/labs"
	"webgpu/internal/webserver"
)

// client is a minimal API client for the integration tests.
type client struct {
	t     *testing.T
	base  string
	token string
	http  *http.Client
}

func newClient(t *testing.T, base string) *client {
	return &client{t: t, base: base, http: &http.Client{Timeout: 120 * time.Second}}
}

func (c *client) do(method, path string, body interface{}, out interface{}) (int, string) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func (c *client) mustDo(method, path string, body, out interface{}) {
	c.t.Helper()
	if code, raw := c.do(method, path, body, out); code >= 300 {
		c.t.Fatalf("%s %s -> %d: %s", method, path, code, raw)
	}
}

func (c *client) register(name, email, role string) string {
	c.t.Helper()
	var resp struct {
		User  webserver.User `json:"user"`
		Token string         `json:"token"`
	}
	c.mustDo("POST", "/api/register",
		map[string]string{"name": name, "email": email, "role": role}, &resp)
	c.token = resp.Token
	return resp.User.ID
}

// studentFlow drives the complete §IV-A student lifecycle on a platform.
func studentFlow(t *testing.T, p *Platform) {
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	alice := newClient(t, ts.URL)
	aliceID := alice.register("Alice", "alice@example.edu", "student")

	// List labs (action: browse the course).
	var labList []map[string]interface{}
	alice.mustDo("GET", "/api/labs", nil, &labList)
	if len(labList) == 0 {
		t.Fatal("no labs listed")
	}

	// Fetch the vector-add lab: skeleton + rendered description (Figure 3).
	var labView map[string]interface{}
	alice.mustDo("GET", "/api/labs/vector-add", nil, &labView)
	if !strings.Contains(labView["description"].(string), "<h1>") {
		t.Error("description not rendered to HTML")
	}
	if labView["code"].(string) == "" {
		t.Error("no skeleton returned")
	}

	// Edit code (action 1): save twice to build history.
	broken := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`
	alice.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": broken}, nil)
	good := labs.ByID("vector-add").Reference
	alice.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": good}, nil)

	var historyPage struct {
		Total int                 `json:"total"`
		Items []webserver.CodeRec `json:"items"`
	}
	alice.mustDo("GET", "/api/labs/vector-add/history", nil, &historyPage)
	history := historyPage.Items
	if historyPage.Total != 2 || len(history) != 2 || history[0].Rev != 1 || history[1].Rev != 2 {
		t.Fatalf("history = %+v", historyPage)
	}

	// Compile (action 2).
	var compileRes map[string]interface{}
	alice.mustDo("POST", "/api/labs/vector-add/compile", nil, &compileRes)

	// Run against a dataset (action 3).
	var att webserver.AttemptRec
	alice.mustDo("POST", "/api/labs/vector-add/attempt?dataset=0", nil, &att)
	if att.Outcome == nil || !att.Outcome.Correct {
		t.Fatalf("attempt outcome = %+v", att.Outcome)
	}
	if !strings.Contains(att.Outcome.Trace, "input length") {
		t.Errorf("attempt trace missing wbLog: %q", att.Outcome.Trace)
	}

	// Short answers (action 4).
	alice.mustDo("POST", "/api/labs/vector-add/questions",
		map[string][]string{"answers": {"two flops per thread", "guards tail threads"}}, nil)

	// Submit for grading (action 5).
	var sub webserver.SubmissionRec
	alice.mustDo("POST", "/api/labs/vector-add/submit", nil, &sub)
	if sub.Grade == nil || sub.Grade.Total != sub.Grade.Max {
		t.Fatalf("grade = %+v", sub.Grade)
	}

	// Grade recorded and visible (action 6 adjacent).
	var grade map[string]interface{}
	alice.mustDo("GET", "/api/labs/vector-add/grade", nil, &grade)
	if int(grade["total"].(float64)) != sub.Grade.Max {
		t.Errorf("grade total = %v", grade["total"])
	}

	// Gradebook write-back happened.
	if g, err := p.Gradebook.Lookup(aliceID, "vector-add"); err != nil || g.Total != sub.Grade.Max {
		t.Errorf("gradebook: %+v, %v", g, err)
	}

	// Attempts view (action 6).
	var attemptsPage struct {
		Total int                    `json:"total"`
		Items []webserver.AttemptRec `json:"items"`
	}
	alice.mustDo("GET", "/api/labs/vector-add/attempts", nil, &attemptsPage)
	if attemptsPage.Total != 1 || len(attemptsPage.Items) != 1 {
		t.Fatalf("attempts = %+v", attemptsPage)
	}

	// Instructor joins, inspects the roster, comments, and overrides.
	prof := newClient(t, ts.URL)
	prof.register("Prof", "prof@example.edu", "instructor")
	var roster []webserver.RosterRow
	prof.mustDo("GET", "/api/instructor/roster/vector-add", nil, &roster)
	if len(roster) != 1 || roster[0].UserID != aliceID || roster[0].TotalGrade != sub.Grade.Max {
		t.Fatalf("roster = %+v", roster)
	}
	prof.mustDo("POST", "/api/instructor/comment",
		map[string]string{"user_id": aliceID, "lab_id": "vector-add", "text": "nice work"}, nil)
	var overridden map[string]interface{}
	prof.mustDo("POST", "/api/instructor/override",
		map[string]interface{}{"user_id": aliceID, "lab_id": "vector-add",
			"total": 50, "comment": "late penalty"}, &overridden)
	if int(overridden["total"].(float64)) != 50 {
		t.Errorf("override = %v", overridden)
	}

	// Export includes the overridden grade.
	code, csv := prof.do("GET", "/api/instructor/export", nil, nil)
	if code != 200 || !strings.Contains(csv, "vector-add,50") {
		t.Errorf("export = %d %q", code, csv)
	}

	// Students cannot reach instructor tools.
	if code, _ := alice.do("GET", "/api/instructor/roster/vector-add", nil, nil); code != http.StatusForbidden {
		t.Errorf("student roster access = %d", code)
	}
}

func TestStudentFlowV1(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 2})
	defer p.Close()
	studentFlow(t, p)
}

func TestStudentFlowV2(t *testing.T) {
	p := New(Options{Arch: V2, Workers: 2})
	defer p.Close()
	studentFlow(t, p)
}

func TestV2MPIJobRouting(t *testing.T) {
	// A fleet of 2-GPU MPI-capable workers serves the mpi-stencil lab
	// end-to-end through the broker (course 598 uses it).
	p := New(Options{Arch: V2, Workers: 1, GPUsPerWorker: 2, Course: labs.CourseECE598})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	c := newClient(t, ts.URL)
	c.register("Grad", "grad@example.edu", "student")
	l := labs.ByID("mpi-stencil")
	c.mustDo("POST", "/api/labs/mpi-stencil/save", map[string]string{"source": l.Reference}, nil)
	var att webserver.AttemptRec
	c.mustDo("POST", "/api/labs/mpi-stencil/attempt?dataset=0", nil, &att)
	if att.Outcome == nil || !att.Outcome.Correct {
		t.Fatalf("mpi attempt = %+v", att.Outcome)
	}
}

func TestCourseScopesLabs(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1, Course: labs.CourseHPP})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newClient(t, ts.URL)
	c.register("S", "s@example.edu", "student")
	// sgemm is a 598 lab, not HPP.
	if code, _ := c.do("GET", "/api/labs/sgemm", nil, nil); code != http.StatusNotFound {
		t.Errorf("sgemm in HPP = %d", code)
	}
}

func TestScaleUpAndDown(t *testing.T) {
	for _, arch := range []Architecture{V1, V2} {
		p := New(Options{Arch: arch, Workers: 1})
		p.Scale(4)
		if got := p.Workers(); got != 4 {
			t.Errorf("%v: scaled to %d, want 4", arch, got)
		}
		p.Scale(2)
		if got := p.Workers(); got != 2 {
			t.Errorf("%v: scaled down to %d, want 2", arch, got)
		}
		p.Close()
	}
}

func TestV2SubmissionSurvivesWorkerChurn(t *testing.T) {
	// Jobs published while the fleet is empty complete once workers join —
	// the elasticity argument for the poll model (§VI-A).
	p := New(Options{Arch: V2, Workers: 0, DispatchWait: time.Minute})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	c := newClient(t, ts.URL)
	c.register("S", "s@example.edu", "student")
	l := labs.ByID("vector-add")
	c.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": l.Reference}, nil)

	done := make(chan webserver.AttemptRec, 1)
	go func() {
		var att webserver.AttemptRec
		c.mustDo("POST", "/api/labs/vector-add/attempt?dataset=0", nil, &att)
		done <- att
	}()
	time.Sleep(50 * time.Millisecond) // job sits in the queue, no workers
	p.Scale(1)
	select {
	case att := <-done:
		if att.Outcome == nil || !att.Outcome.Correct {
			t.Fatalf("attempt after scale-up = %+v", att.Outcome)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never completed after workers joined")
	}
}

func TestBrokerMirrorsToStandby(t *testing.T) {
	p := New(Options{Arch: V2, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newClient(t, ts.URL)
	c.register("S", "s@example.edu", "student")
	l := labs.ByID("vector-add")
	c.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": l.Reference}, nil)
	var att webserver.AttemptRec
	c.mustDo("POST", "/api/labs/vector-add/attempt?dataset=0", nil, &att)

	deadline := time.Now().Add(2 * time.Second)
	for p.StandbyBroker.Stats().Published == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.StandbyBroker.Stats().Published == 0 {
		t.Error("standby broker received no mirrored publishes")
	}
}

func TestV2ReplicaServesReads(t *testing.T) {
	p := New(Options{Arch: V2, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newClient(t, ts.URL)
	c.register("S", "s@example.edu", "student")
	c.mustDo("POST", "/api/labs/vector-add/save", map[string]string{"source": "x"}, nil)
	if !p.Replica.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("replica lag = %d", p.Replica.Lag())
	}
	if err := p.Replica.View(func(tx *db.Tx) error {
		if tx.Count("history") == 0 {
			return fmt.Errorf("replica has no history rows")
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
}

func TestDashboardStatus(t *testing.T) {
	for _, arch := range []Architecture{V1, V2} {
		p := New(Options{Arch: arch, Workers: 2})
		ts := httptest.NewServer(p.Handler())
		c := newClient(t, ts.URL)
		c.register("S", "s@example.edu", "student")
		c.mustDo("POST", "/api/labs/vector-add/save",
			map[string]string{"source": labs.ByID("vector-add").Reference}, nil)
		c.mustDo("POST", "/api/labs/vector-add/submit", nil, nil)

		st := p.Status()
		if st.Workers != 2 {
			t.Errorf("%v: workers = %d", arch, st.Workers)
		}
		if st.DBSeq == 0 {
			t.Errorf("%v: no db commits recorded", arch)
		}
		if st.GradebookRows != 1 {
			t.Errorf("%v: gradebook rows = %d", arch, st.GradebookRows)
		}
		out := st.Render()
		if !strings.Contains(out, "workers:        2") {
			t.Errorf("%v: render missing workers:\n%s", arch, out)
		}
		if arch == V2 && !strings.Contains(out, "replica lag") {
			t.Errorf("v2 render missing replica lag:\n%s", out)
		}
		if arch == V1 && !strings.Contains(out, "evictions") {
			t.Errorf("v1 render missing evictions:\n%s", out)
		}
		ts.Close()
		p.Close()
	}
}

func TestHealthEndpoint(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestLabPageHTML(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newClient(t, ts.URL)
	c.register("S", "s@example.edu", "student")
	req, _ := http.NewRequest("GET", ts.URL+"/labs/vector-add/view", nil)
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	page := buf.String()
	for _, want := range []string{"<textarea", "Compile", "Dataset 0", "Attempts | History"} {
		if !strings.Contains(page, want) {
			t.Errorf("lab page missing %q", want)
		}
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	c := newClient(t, ts.URL)
	c.register("A", "dup@example.edu", "student")
	c2 := newClient(t, ts.URL)
	if code, _ := c2.do("POST", "/api/register",
		map[string]string{"name": "B", "email": "dup@example.edu"}, nil); code != http.StatusConflict {
		t.Errorf("duplicate register = %d", code)
	}
	// But login works.
	var resp map[string]interface{}
	c2.mustDo("POST", "/api/login", map[string]string{"email": "dup@example.edu"}, &resp)
	if resp["token"] == "" {
		t.Error("login returned no token")
	}
}
