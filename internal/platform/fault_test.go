package platform

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/labs"
	"webgpu/internal/worker"
)

// TestV2PlatformDedupsDuplicateResults drives the duplicate-result hole
// through the full platform: the driver crashes right after publishing a
// result, the job redelivers and produces a second result, and the
// result router must count the job exactly once and drop the duplicate.
func TestV2PlatformDedupsDuplicateResults(t *testing.T) {
	reg := faultinject.New(1)
	p := New(Options{
		Arch:       V2,
		Workers:    1,
		Faults:     reg,
		Visibility: 60 * time.Millisecond, // fast redelivery of the abandoned lease
	})
	defer p.Close()

	reg.Enable(faultinject.PointDriverCrashAfterPublish, faultinject.Fault{Once: true})
	job := &worker.Job{
		ID:     "dup-job-1",
		LabID:  "vector-add",
		UserID: "u1",
		Source: labs.ByID("vector-add").Reference,
	}
	res, err := p.dispatchV2(context.Background(), job)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if !res.Correct() {
		t.Fatalf("result = %+v", res)
	}

	// The redelivered execution publishes a second result; the router
	// must swallow it.
	deadline := time.Now().Add(10 * time.Second)
	for p.ResultDuplicates() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.ResultDuplicates(); got != 1 {
		t.Fatalf("duplicates dropped = %d, want 1", got)
	}
	if got := p.metrics.Counter("broker_duplicate_results"); got != 1 {
		t.Errorf("broker_duplicate_results = %v, want 1", got)
	}
	if u := p.Broker.Unaccounted(); u != 0 {
		t.Errorf("unaccounted = %d", u)
	}
}

// TestAdminDeadLetterEndpoints: a poison message lands in the DLQ, the
// instructor inspects it over HTTP and redrives it; v1 deployments
// (no broker) answer 501.
func TestAdminDeadLetterEndpoints(t *testing.T) {
	p := New(Options{Arch: V2, Workers: 1})
	defer p.Close()
	p.Broker.SetMaxAttempts(2)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	prof := newClient(t, ts.URL)
	prof.register("Prof", "prof@example.edu", "instructor")

	// Undecodable payload: every delivery nacks until it dead-letters.
	if _, err := p.Broker.Publish(worker.TopicJobs, []byte("not a job")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(p.Broker.DeadLetters()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(p.Broker.DeadLetters()) == 0 {
		t.Fatal("poison message never dead-lettered")
	}

	var listing struct {
		Total       int `json:"total"`
		DeadLetters []struct {
			ID       string `json:"id"`
			Topic    string `json:"topic"`
			Attempts int    `json:"attempts"`
		} `json:"dead_letters"`
	}
	prof.mustDo("GET", "/api/admin/deadletters", nil, &listing)
	if listing.Total != 1 || len(listing.DeadLetters) != 1 {
		t.Fatalf("listing = %+v", listing)
	}
	if dl := listing.DeadLetters[0]; dl.Topic != worker.TopicJobs || dl.Attempts != 2 {
		t.Errorf("dead letter = %+v", dl)
	}

	var redrive struct {
		Redriven int `json:"redriven"`
	}
	prof.mustDo("POST", "/api/admin/deadletters/redrive", nil, &redrive)
	if redrive.Redriven != 1 {
		t.Fatalf("redriven = %d", redrive.Redriven)
	}

	// Students cannot reach the queue admin.
	student := newClient(t, ts.URL)
	student.register("Stu", "stu@example.edu", "student")
	if code, _ := student.do("GET", "/api/admin/deadletters", nil, nil); code != http.StatusForbidden {
		t.Errorf("student access = %d, want 403", code)
	}
}

func TestAdminDeadLettersNotImplementedOnV1(t *testing.T) {
	p := New(Options{Arch: V1, Workers: 1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	prof := newClient(t, ts.URL)
	prof.register("Prof", "prof2@example.edu", "instructor")
	if code, _ := prof.do("GET", "/api/admin/deadletters", nil, nil); code != http.StatusNotImplemented {
		t.Errorf("v1 deadletters = %d, want 501", code)
	}
	if code, _ := prof.do("POST", "/api/admin/deadletters/redrive", nil, nil); code != http.StatusNotImplemented {
		t.Errorf("v1 redrive = %d, want 501", code)
	}
}
