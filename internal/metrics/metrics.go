// Package metrics provides the counters, gauges, and histograms the v2
// worker nodes report to the replicated database, and the dashboard
// snapshot the system administrators watch (§VI-A: "An information
// dashboard is available to the system administrators to track the system
// status").
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counts     map[string]float64
	gauges     map[string]float64
	hists      map[string]*Histogram
	collectors []func(*Registry)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]float64{},
		gauges: map[string]float64{},
		hists:  map[string]*Histogram{},
	}
}

// Inc adds delta to a counter.
func (r *Registry) Inc(name string, delta float64) {
	r.mu.Lock()
	r.counts[name] += delta
	r.mu.Unlock()
}

// Set assigns a gauge.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records a histogram sample.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	r.mu.Unlock()
	h.Observe(v)
}

// ObserveDuration records a duration sample in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d)/float64(time.Millisecond))
}

// Counter reads a counter.
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Gauge reads a gauge.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Hist returns the named histogram, or nil.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// Snapshot renders all metrics as sorted "name value" lines — the
// dashboard text view.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for k, v := range r.counts {
		lines = append(lines, fmt.Sprintf("counter %s %g", k, v))
	}
	for k, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", k, v))
	}
	for k, h := range r.hists {
		lines = append(lines, fmt.Sprintf("hist %s count=%d p50=%.2f p95=%.2f p99=%.2f max=%.2f",
			k, h.Count(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// AddCollector registers a function invoked before each export so
// subsystems with their own stats structs (program cache, broker, fleet)
// can refresh gauges lazily instead of pushing on every event.
func (r *Registry) AddCollector(fn func(*Registry)) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Collect runs all registered collectors (outside the registry lock, so
// collectors may call Set/Inc/Observe freely).
func (r *Registry) Collect() {
	r.mu.Lock()
	fns := make([]func(*Registry), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
}

// promName rewrites a metric name into the Prometheus charset with the
// webgpu_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("webgpu_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PrometheusText runs the collectors and renders every metric in the
// Prometheus text exposition format: counters and gauges as single
// samples, histograms as summaries (quantile series plus _sum/_count).
func (r *Registry) PrometheusText() string {
	r.Collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counts))
	for k := range r.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %g\n", n, n, r.counts[k])
	}
	names = names[:0]
	for k := range r.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", n, n, r.gauges[k])
	}
	names = names[:0]
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := r.hists[k]
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), h.Quantile(q))
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count())
	}
	return b.String()
}

// Histogram is a simple sample-retaining histogram with reservoir capping.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	max     float64
}

const histCap = 4096

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records a sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < histCap {
		h.samples = append(h.samples, v)
	} else {
		// Deterministic reservoir: overwrite in a rolling fashion.
		h.samples[int(h.count)%histCap] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0..1) of the retained samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
