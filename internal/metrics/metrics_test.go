package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("jobs", 1)
	r.Inc("jobs", 2)
	r.Set("workers", 5)
	r.Set("workers", 3)
	if got := r.Counter("jobs"); got != 3 {
		t.Errorf("counter = %v", got)
	}
	if got := r.Gauge("workers"); got != 3 {
		t.Errorf("gauge = %v", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got < 45 || got > 55 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.95); got < 90 || got > 100 {
		t.Errorf("p95 = %v", got)
	}
	if h.Max() != 100 {
		t.Errorf("max = %v", h.Max())
	}
	if got := h.Mean(); got < 50 || got > 51 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestHistogramReservoirCap(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 3*histCap; i++ {
		h.Observe(1)
	}
	if h.Count() != int64(3*histCap) {
		t.Errorf("count = %d", h.Count())
	}
	if h.Quantile(0.99) != 1 {
		t.Errorf("quantile = %v", h.Quantile(0.99))
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("latency", 250*time.Millisecond)
	if got := r.Hist("latency").Max(); got != 250 {
		t.Errorf("latency ms = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Inc("a_jobs", 2)
	r.Set("b_gauge", 7)
	r.Observe("c_hist", 1.5)
	snap := r.Snapshot()
	for _, want := range []string{"counter a_jobs 2", "gauge b_gauge 7", "hist c_hist count=1"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
	// Sorted output is deterministic.
	if r.Snapshot() != snap {
		t.Error("snapshot not deterministic")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("n", 1)
				r.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Errorf("counter = %v", got)
	}
	if got := r.Hist("h").Count(); got != 8000 {
		t.Errorf("hist count = %v", got)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Inc("jobs_total", 3)
	r.Set("workers", 2)
	r.Observe("latency_ms", 10)
	r.Observe("latency_ms", 20)
	out := r.PrometheusText()
	for _, want := range []string{
		"# TYPE webgpu_jobs_total counter",
		"webgpu_jobs_total 3",
		"# TYPE webgpu_workers gauge",
		"webgpu_workers 2",
		`webgpu_latency_ms{quantile="0.5"}`,
		"webgpu_latency_ms_sum 30",
		"webgpu_latency_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorsRefreshOnExport(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.AddCollector(func(reg *Registry) {
		n++
		reg.Set("lazy_gauge", float64(n))
	})
	_ = r.PrometheusText()
	out := r.PrometheusText()
	if n != 2 {
		t.Fatalf("collector ran %d times, want once per export", n)
	}
	if !strings.Contains(out, "webgpu_lazy_gauge 2") {
		t.Errorf("lazy gauge not refreshed:\n%s", out)
	}
}

func TestPromNameSanitized(t *testing.T) {
	r := NewRegistry()
	r.Inc("weird-name.with chars", 1)
	out := r.PrometheusText()
	if !strings.Contains(out, "webgpu_weird_name_with_chars 1") {
		t.Errorf("name not sanitized:\n%s", out)
	}
}
