// Package db is the embedded transactional record store behind WebGPU's
// web tier, standing in for the MySQL (v1) and Aurora/replicated (v2)
// databases of §III-B and §VI-A. It stores JSON-encoded records in named
// tables, provides serializable read-write transactions, write-ahead-log
// persistence with snapshots, secondary indexes, streaming replication to
// read replicas, and a bounded connection pool.
package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors.
var (
	ErrNotFound   = errors.New("db: record not found")
	ErrConflict   = errors.New("db: transaction conflict")
	ErrClosed     = errors.New("db: database closed")
	ErrBadRecord  = errors.New("db: record is not a JSON object")
	ErrPoolClosed = errors.New("db: connection pool closed")
)

// Entry is one committed mutation, the unit of the WAL and of replication.
type Entry struct {
	Seq   uint64          `json:"seq"`
	Table string          `json:"table"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value,omitempty"` // nil = delete
}

type table struct {
	rows map[string][]byte
	// indexes: field name -> value -> set of keys
	indexes map[string]map[string]map[string]struct{}
}

func newTable() *table {
	return &table{rows: map[string][]byte{}, indexes: map[string]map[string]map[string]struct{}{}}
}

// DB is the store. All methods are safe for concurrent use; writes are
// serialized (single writer), reads run under a shared lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	seq    uint64
	closed bool

	wal *WAL

	subMu sync.Mutex
	subs  []chan Entry
}

// New creates an empty in-memory database.
func New() *DB {
	return &DB{tables: map[string]*table{}}
}

// Close marks the database closed; in-flight readers finish, new
// transactions fail.
func (d *DB) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.subMu.Lock()
	for _, ch := range d.subs {
		close(ch)
	}
	d.subs = nil
	d.subMu.Unlock()
}

// Seq returns the last committed sequence number.
func (d *DB) Seq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seq
}

// CreateIndex declares a secondary index on a string (or stringable)
// field of a table's records. Existing rows are indexed immediately.
func (d *DB) CreateIndex(tableName, field string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tableLocked(tableName)
	if _, ok := t.indexes[field]; ok {
		return
	}
	idx := map[string]map[string]struct{}{}
	t.indexes[field] = idx
	for key, raw := range t.rows {
		if v, ok := extractField(raw, field); ok {
			addToIndex(idx, v, key)
		}
	}
}

func (d *DB) tableLocked(name string) *table {
	t, ok := d.tables[name]
	if !ok {
		t = newTable()
		d.tables[name] = t
	}
	return t
}

func extractField(raw []byte, field string) (string, bool) {
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		return "", false
	}
	v, ok := m[field]
	if !ok {
		return "", false
	}
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", x), "0"), "."), true
	case bool:
		if x {
			return "true", true
		}
		return "false", true
	}
	return "", false
}

func addToIndex(idx map[string]map[string]struct{}, value, key string) {
	set, ok := idx[value]
	if !ok {
		set = map[string]struct{}{}
		idx[value] = set
	}
	set[key] = struct{}{}
}

func removeFromIndex(idx map[string]map[string]struct{}, value, key string) {
	if set, ok := idx[value]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(idx, value)
		}
	}
}

// ---- Transactions ------------------------------------------------------------

// Tx is a transaction handle. Read methods see committed state plus the
// transaction's own writes; mutations are buffered until commit.
type Tx struct {
	db       *DB
	writable bool
	writes   map[string]map[string]json.RawMessage // table -> key -> value (nil=delete)
	order    []entryKey
}

type entryKey struct{ table, key string }

// View runs fn in a read-only transaction.
func (d *DB) View(fn func(tx *Tx) error) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return fn(&Tx{db: d})
}

// Update runs fn in a writable transaction; if fn returns nil the buffered
// writes commit atomically (and reach the WAL and replicas).
func (d *DB) Update(fn func(tx *Tx) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	tx := &Tx{db: d, writable: true, writes: map[string]map[string]json.RawMessage{}}
	if err := fn(tx); err != nil {
		return err
	}
	return d.commitLocked(tx)
}

func (d *DB) commitLocked(tx *Tx) error {
	var entries []Entry
	for _, ek := range tx.order {
		val := tx.writes[ek.table][ek.key]
		d.seq++
		e := Entry{Seq: d.seq, Table: ek.table, Key: ek.key, Value: val}
		d.applyLocked(e)
		entries = append(entries, e)
	}
	if d.wal != nil {
		for _, e := range entries {
			if err := d.wal.append(e); err != nil {
				return fmt.Errorf("db: wal append: %w", err)
			}
		}
	}
	if len(entries) > 0 {
		d.subMu.Lock()
		for _, ch := range d.subs {
			for _, e := range entries {
				select {
				case ch <- e:
				default: // slow replica: drop; it will resync from snapshot
				}
			}
		}
		d.subMu.Unlock()
	}
	return nil
}

func (d *DB) applyLocked(e Entry) {
	t := d.tableLocked(e.Table)
	if old, ok := t.rows[e.Key]; ok {
		for field, idx := range t.indexes {
			if v, ok := extractField(old, field); ok {
				removeFromIndex(idx, v, e.Key)
			}
		}
	}
	if e.Value == nil {
		delete(t.rows, e.Key)
		return
	}
	cp := make([]byte, len(e.Value))
	copy(cp, e.Value)
	t.rows[e.Key] = cp
	for field, idx := range t.indexes {
		if v, ok := extractField(cp, field); ok {
			addToIndex(idx, v, e.Key)
		}
	}
}

// Put stores value (JSON-marshaled) under table/key.
func (tx *Tx) Put(tableName, key string, value interface{}) error {
	if !tx.writable {
		return errors.New("db: put in read-only transaction")
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("db: marshal: %w", err)
	}
	if len(raw) == 0 || raw[0] != '{' {
		return ErrBadRecord
	}
	tx.buffer(tableName, key, raw)
	return nil
}

// Delete removes table/key (no error if absent, like SQL DELETE).
func (tx *Tx) Delete(tableName, key string) error {
	if !tx.writable {
		return errors.New("db: delete in read-only transaction")
	}
	tx.buffer(tableName, key, nil)
	return nil
}

func (tx *Tx) buffer(tableName, key string, raw json.RawMessage) {
	t, ok := tx.writes[tableName]
	if !ok {
		t = map[string]json.RawMessage{}
		tx.writes[tableName] = t
	}
	if _, seen := t[key]; !seen {
		tx.order = append(tx.order, entryKey{tableName, key})
	} else {
		// Re-write of the same key within the tx: keep original order slot.
		for i, ek := range tx.order {
			if ek.table == tableName && ek.key == key {
				tx.order = append(tx.order[:i], tx.order[i+1:]...)
				break
			}
		}
		tx.order = append(tx.order, entryKey{tableName, key})
	}
	t[key] = raw
}

// Get unmarshals table/key into out, honouring the transaction's buffered
// writes.
func (tx *Tx) Get(tableName, key string, out interface{}) error {
	if t, ok := tx.writes[tableName]; ok {
		if raw, seen := t[key]; seen {
			if raw == nil {
				return ErrNotFound
			}
			return json.Unmarshal(raw, out)
		}
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return ErrNotFound
	}
	raw, ok := t.rows[key]
	if !ok {
		return ErrNotFound
	}
	return json.Unmarshal(raw, out)
}

// Exists reports whether table/key exists.
func (tx *Tx) Exists(tableName, key string) bool {
	var raw json.RawMessage
	err := tx.Get(tableName, key, &raw)
	return err == nil
}

// Keys returns the sorted keys of a table (committed state plus buffered
// writes).
func (tx *Tx) Keys(tableName string) []string {
	set := map[string]bool{}
	if t, ok := tx.db.tables[tableName]; ok {
		for k := range t.rows {
			set[k] = true
		}
	}
	if t, ok := tx.writes[tableName]; ok {
		for k, v := range t {
			if v == nil {
				delete(set, k)
			} else {
				set[k] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Scan calls fn for every record of the table in key order; fn returning
// false stops the scan.
func (tx *Tx) Scan(tableName string, fn func(key string, raw json.RawMessage) bool) {
	for _, k := range tx.Keys(tableName) {
		var raw json.RawMessage
		if err := tx.Get(tableName, k, &raw); err == nil {
			if !fn(k, raw) {
				return
			}
		}
	}
}

// IndexLookup returns the sorted keys whose indexed field equals value
// (committed state only; indexes update at commit).
func (tx *Tx) IndexLookup(tableName, field, value string) []string {
	t, ok := tx.db.tables[tableName]
	if !ok {
		return nil
	}
	idx, ok := t.indexes[field]
	if !ok {
		return nil
	}
	set := idx[value]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count returns the number of records in the table.
func (tx *Tx) Count(tableName string) int {
	return len(tx.Keys(tableName))
}
