package db

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"webgpu/internal/faultinject"
)

// WAL is a write-ahead log of committed entries, one JSON document per
// line. Attaching a WAL to a DB makes every subsequent commit durable;
// Replay reconstructs a DB from a log stream.
type WAL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	n      int
	raw    io.Writer
	faults *faultinject.Registry
}

// NewWAL wraps a writer as a WAL sink.
func NewWAL(w io.Writer) *WAL {
	return &WAL{w: bufio.NewWriter(w), raw: w}
}

// SetFaults attaches a fault-injection registry so tests can fail the
// append path (a full disk, in production terms).
func (wal *WAL) SetFaults(f *faultinject.Registry) {
	wal.mu.Lock()
	defer wal.mu.Unlock()
	wal.faults = f
}

func (wal *WAL) append(e Entry) error {
	wal.mu.Lock()
	defer wal.mu.Unlock()
	if err := wal.faults.Fire(faultinject.PointWALAppend); err != nil {
		return fmt.Errorf("db: wal append: %w", err)
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := wal.w.Write(raw); err != nil {
		return err
	}
	if err := wal.w.WriteByte('\n'); err != nil {
		return err
	}
	wal.n++
	return wal.w.Flush()
}

// Entries reports how many entries have been appended.
func (wal *WAL) Entries() int {
	wal.mu.Lock()
	defer wal.mu.Unlock()
	return wal.n
}

// AttachWAL makes every subsequent commit append to the log.
func (d *DB) AttachWAL(wal *WAL) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wal = wal
}

// Replay applies a WAL stream to the database (used at startup). Entries
// with sequence numbers at or below the current sequence are skipped, so a
// snapshot followed by its WAL tail replays correctly.
func (d *DB) Replay(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("db: wal line %d: %w", line, err)
		}
		if e.Seq <= d.seq {
			continue
		}
		d.applyLocked(e)
		d.seq = e.Seq
	}
	return sc.Err()
}

// Compact writes a snapshot of the current state and switches the WAL to
// a fresh sink, bounding log growth: the snapshot plus the new WAL tail
// reconstruct the database, and the old log can be discarded. This is the
// maintenance operation a long-lived deployment runs between offerings.
func (d *DB) Compact(snapshot io.Writer, newWAL *WAL) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := snapshotDoc{Seq: d.seq, Tables: map[string]map[string]string{}}
	for name, t := range d.tables {
		rows := make(map[string]string, len(t.rows))
		for k, v := range t.rows {
			rows[k] = string(v)
		}
		doc.Tables[name] = rows
	}
	if err := json.NewEncoder(snapshot).Encode(doc); err != nil {
		return fmt.Errorf("db: compact snapshot: %w", err)
	}
	d.wal = newWAL
	return nil
}

// snapshotDoc is the serialized form of a full-database snapshot.
type snapshotDoc struct {
	Seq    uint64                       `json:"seq"`
	Tables map[string]map[string]string `json:"tables"`
}

// Snapshot writes a point-in-time copy of the whole database; replaying
// the WAL tail on top of a snapshot reconstructs the latest state.
func (d *DB) Snapshot(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	doc := snapshotDoc{Seq: d.seq, Tables: map[string]map[string]string{}}
	for name, t := range d.tables {
		rows := make(map[string]string, len(t.rows))
		for k, v := range t.rows {
			rows[k] = string(v)
		}
		doc.Tables[name] = rows
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadSnapshot replaces the database contents with a snapshot.
func (d *DB) LoadSnapshot(r io.Reader) error {
	var doc snapshotDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("db: snapshot: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables = map[string]*table{}
	for name, rows := range doc.Tables {
		t := d.tableLocked(name)
		for k, v := range rows {
			t.rows[k] = []byte(v)
		}
	}
	d.seq = doc.Seq
	return nil
}
