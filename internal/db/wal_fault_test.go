package db

import (
	"bytes"
	"errors"
	"testing"

	"webgpu/internal/faultinject"
)

// TestWALAppendFaultPropagates: an injected WAL write failure (a full
// disk) surfaces from the commit as a wrapped faultinject.ErrInjected,
// and once the fault clears the database keeps logging. The in-memory
// state was already applied — the WAL is a durability log, not a
// commit gate — so the entry count simply lags by the lost append.
func TestWALAppendFaultPropagates(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	reg := faultinject.New(1)
	wal.SetFaults(reg)
	d := New()
	d.AttachWAL(wal)

	reg.Enable(faultinject.PointWALAppend, faultinject.Fault{Once: true})
	err := d.Update(func(tx *Tx) error {
		return tx.Put("users", "u1", user{Name: "Ada"})
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("commit error = %v, want ErrInjected", err)
	}
	if got := wal.Entries(); got != 0 {
		t.Fatalf("entries = %d after failed append", got)
	}

	// The fault was Once: the next commit logs normally.
	if err := d.Update(func(tx *Tx) error {
		return tx.Put("users", "u2", user{Name: "Grace"})
	}); err != nil {
		t.Fatal(err)
	}
	if got := wal.Entries(); got != 1 {
		t.Fatalf("entries = %d after recovery, want 1", got)
	}
	if buf.Len() == 0 {
		t.Fatal("nothing reached the WAL sink")
	}
}
