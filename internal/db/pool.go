package db

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the bounded connection pool the web server keeps to the
// database (§III-B: "The web-server maintains a connection pool to the
// database"). Connections are logical handles that meter concurrency and
// collect usage statistics.
type Pool struct {
	db     *DB
	sem    chan struct{}
	closed atomic.Bool

	mu        sync.Mutex
	acquired  int64
	waits     int64
	waitTotal time.Duration
}

// Conn is a pooled handle; it proxies transactions to the database.
type Conn struct {
	pool     *Pool
	released bool
	mu       sync.Mutex
}

// NewPool creates a pool with the given number of connections.
func NewPool(d *DB, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	p := &Pool{db: d, sem: make(chan struct{}, size)}
	for i := 0; i < size; i++ {
		p.sem <- struct{}{}
	}
	return p
}

// Get acquires a connection, waiting up to timeout.
func (p *Pool) Get(timeout time.Duration) (*Conn, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	start := time.Now()
	select {
	case <-p.sem:
	default:
		// Contended: record a wait.
		p.mu.Lock()
		p.waits++
		p.mu.Unlock()
		select {
		case <-p.sem:
		case <-time.After(timeout):
			return nil, fmt.Errorf("db: pool exhausted after %v", timeout)
		}
	}
	if p.closed.Load() {
		p.sem <- struct{}{}
		return nil, ErrPoolClosed
	}
	p.mu.Lock()
	p.acquired++
	p.waitTotal += time.Since(start)
	p.mu.Unlock()
	return &Conn{pool: p}, nil
}

// Put releases the connection back to the pool; double release is safe.
func (p *Pool) Put(c *Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.released {
		return
	}
	c.released = true
	p.sem <- struct{}{}
}

// Close shuts the pool; outstanding connections may still be released.
func (p *Pool) Close() { p.closed.Store(true) }

// InUse reports connections currently held.
func (p *Pool) InUse() int { return cap(p.sem) - len(p.sem) }

// Stats returns acquisition count, wait count, and total wait time.
func (p *Pool) Stats() (acquired, waits int64, waitTotal time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquired, p.waits, p.waitTotal
}

// View runs a read-only transaction over the pooled database.
func (c *Conn) View(fn func(tx *Tx) error) error {
	c.mu.Lock()
	released := c.released
	c.mu.Unlock()
	if released {
		return ErrPoolClosed
	}
	return c.pool.db.View(fn)
}

// Update runs a read-write transaction over the pooled database.
func (c *Conn) Update(fn func(tx *Tx) error) error {
	c.mu.Lock()
	released := c.released
	c.mu.Unlock()
	if released {
		return ErrPoolClosed
	}
	return c.pool.db.Update(fn)
}
