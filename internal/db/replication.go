package db

import (
	"bytes"
	"sync"
	"time"
)

// Streaming replication (§VI-A: "a replicated database", and the v1
// migration from MySQL to Aurora in §III-B). A Replica subscribes to the
// primary's commit stream and applies entries in order; if it falls behind
// (the primary drops entries for slow subscribers) it resynchronizes from
// a fresh snapshot.

// Subscribe returns a channel carrying every committed entry from now on.
// The channel is buffered; a subscriber that cannot keep up loses entries
// and must resync. Call the cancel function to unsubscribe.
func (d *DB) Subscribe(buffer int) (<-chan Entry, func()) {
	ch := make(chan Entry, buffer)
	d.subMu.Lock()
	d.subs = append(d.subs, ch)
	d.subMu.Unlock()
	cancel := func() {
		d.subMu.Lock()
		for i, c := range d.subs {
			if c == ch {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				close(ch)
				break
			}
		}
		d.subMu.Unlock()
	}
	return ch, cancel
}

// Replica is a read replica fed from a primary's subscription stream.
type Replica struct {
	db      *DB
	primary *DB

	mu       sync.Mutex
	applied  uint64
	gapSeen  bool
	resyncs  int
	stopped  bool
	stopCh   chan struct{}
	doneCh   chan struct{}
	cancelFn func()
}

// NewReplica attaches a replica to a primary and starts streaming.
func NewReplica(primary *DB) *Replica {
	r := &Replica{
		db:      New(),
		primary: primary,
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	r.resync()
	ch, cancel := primary.Subscribe(1024)
	r.cancelFn = cancel
	go r.stream(ch)
	return r
}

func (r *Replica) stream(ch <-chan Entry) {
	defer close(r.doneCh)
	for {
		select {
		case <-r.stopCh:
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			r.mu.Lock()
			if e.Seq <= r.applied {
				r.mu.Unlock()
				continue
			}
			if e.Seq != r.applied+1 {
				// Lost entries: mark the gap and resync below.
				r.gapSeen = true
			}
			if r.gapSeen {
				r.mu.Unlock()
				r.resync()
				continue
			}
			r.db.mu.Lock()
			r.db.applyLocked(e)
			r.db.seq = e.Seq
			r.db.mu.Unlock()
			r.applied = e.Seq
			r.mu.Unlock()
		}
	}
}

// resync pulls a fresh snapshot from the primary.
func (r *Replica) resync() {
	var buf bytes.Buffer
	if err := r.primary.Snapshot(&buf); err != nil {
		return
	}
	fresh := New()
	if err := fresh.LoadSnapshot(&buf); err != nil {
		return
	}
	r.mu.Lock()
	r.db.mu.Lock()
	r.db.tables = fresh.tables
	r.db.seq = fresh.seq
	r.db.mu.Unlock()
	r.applied = fresh.seq
	r.gapSeen = false
	r.resyncs++
	r.mu.Unlock()
}

// View runs a read-only transaction on the replica.
func (r *Replica) View(fn func(tx *Tx) error) error { return r.db.View(fn) }

// Lag returns how many commits the replica is behind the primary.
func (r *Replica) Lag() uint64 {
	pseq := r.primary.Seq()
	r.mu.Lock()
	defer r.mu.Unlock()
	if pseq <= r.applied {
		return 0
	}
	return pseq - r.applied
}

// WaitCaughtUp blocks until lag reaches zero or the timeout expires,
// reporting success.
func (r *Replica) WaitCaughtUp(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.Lag() == 0 {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return r.Lag() == 0
}

// Resyncs reports how many full snapshot resynchronizations occurred.
func (r *Replica) Resyncs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resyncs
}

// Stop detaches the replica from the primary.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	r.cancelFn()
	close(r.stopCh)
	<-r.doneCh
}

// Promote detaches the replica and returns it as a standalone primary
// (failover). The caller should stop routing writes to the old primary
// first.
func (r *Replica) Promote() *DB {
	r.Stop()
	return r.db
}
