package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type user struct {
	Name  string `json:"name"`
	Email string `json:"email"`
	Role  string `json:"role"`
}

func TestPutGetDelete(t *testing.T) {
	d := New()
	err := d.Update(func(tx *Tx) error {
		return tx.Put("users", "u1", user{Name: "Ada", Email: "ada@example.edu", Role: "student"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var got user
	if err := d.View(func(tx *Tx) error { return tx.Get("users", "u1", &got) }); err != nil {
		t.Fatal(err)
	}
	if got.Name != "Ada" {
		t.Errorf("got %+v", got)
	}
	if err := d.Update(func(tx *Tx) error { return tx.Delete("users", "u1") }); err != nil {
		t.Fatal(err)
	}
	err = d.View(func(tx *Tx) error { return tx.Get("users", "u1", &got) })
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete: %v", err)
	}
}

func TestTxSeesOwnWrites(t *testing.T) {
	d := New()
	err := d.Update(func(tx *Tx) error {
		if err := tx.Put("t", "k", user{Name: "x"}); err != nil {
			return err
		}
		var u user
		if err := tx.Get("t", "k", &u); err != nil {
			return fmt.Errorf("own write invisible: %w", err)
		}
		if err := tx.Delete("t", "k"); err != nil {
			return err
		}
		if tx.Exists("t", "k") {
			return errors.New("own delete invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRollbackOnError(t *testing.T) {
	d := New()
	boom := errors.New("boom")
	err := d.Update(func(tx *Tx) error {
		_ = tx.Put("t", "k", user{Name: "x"})
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := d.View(func(tx *Tx) error {
		if tx.Exists("t", "k") {
			return errors.New("aborted write visible")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysAndScan(t *testing.T) {
	d := New()
	_ = d.Update(func(tx *Tx) error {
		for _, k := range []string{"c", "a", "b"} {
			if err := tx.Put("t", k, user{Name: k}); err != nil {
				return err
			}
		}
		return nil
	})
	_ = d.View(func(tx *Tx) error {
		keys := tx.Keys("t")
		if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
			t.Errorf("keys = %v", keys)
		}
		if tx.Count("t") != 3 {
			t.Errorf("count = %d", tx.Count("t"))
		}
		n := 0
		tx.Scan("t", func(k string, raw json.RawMessage) bool { n++; return n < 2 })
		if n != 2 {
			t.Errorf("scan early-stop visited %d", n)
		}
		return nil
	})
}

func TestSecondaryIndex(t *testing.T) {
	d := New()
	d.CreateIndex("users", "role")
	_ = d.Update(func(tx *Tx) error {
		_ = tx.Put("users", "u1", user{Name: "Ada", Role: "student"})
		_ = tx.Put("users", "u2", user{Name: "Bob", Role: "instructor"})
		_ = tx.Put("users", "u3", user{Name: "Cat", Role: "student"})
		return nil
	})
	_ = d.View(func(tx *Tx) error {
		got := tx.IndexLookup("users", "role", "student")
		if len(got) != 2 || got[0] != "u1" || got[1] != "u3" {
			t.Errorf("students = %v", got)
		}
		return nil
	})
	// Update moves the record between index buckets.
	_ = d.Update(func(tx *Tx) error {
		return tx.Put("users", "u1", user{Name: "Ada", Role: "instructor"})
	})
	_ = d.View(func(tx *Tx) error {
		if got := tx.IndexLookup("users", "role", "student"); len(got) != 1 {
			t.Errorf("students after role change = %v", got)
		}
		if got := tx.IndexLookup("users", "role", "instructor"); len(got) != 2 {
			t.Errorf("instructors = %v", got)
		}
		return nil
	})
	// Delete removes from the index.
	_ = d.Update(func(tx *Tx) error { return tx.Delete("users", "u2") })
	_ = d.View(func(tx *Tx) error {
		if got := tx.IndexLookup("users", "role", "instructor"); len(got) != 1 {
			t.Errorf("instructors after delete = %v", got)
		}
		return nil
	})
}

func TestIndexOnExistingRows(t *testing.T) {
	d := New()
	_ = d.Update(func(tx *Tx) error {
		return tx.Put("users", "u1", user{Role: "student"})
	})
	d.CreateIndex("users", "role")
	_ = d.View(func(tx *Tx) error {
		if got := tx.IndexLookup("users", "role", "student"); len(got) != 1 {
			t.Errorf("existing rows not indexed: %v", got)
		}
		return nil
	})
}

func TestNonObjectRejected(t *testing.T) {
	d := New()
	err := d.Update(func(tx *Tx) error { return tx.Put("t", "k", 42) })
	if !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v", err)
	}
}

func TestClosedDB(t *testing.T) {
	d := New()
	d.Close()
	if err := d.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("update on closed = %v", err)
	}
	if err := d.View(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("view on closed = %v", err)
	}
}

func TestWALReplayEquivalence(t *testing.T) {
	var log bytes.Buffer
	d := New()
	d.AttachWAL(NewWAL(&log))
	for i := 0; i < 20; i++ {
		i := i
		_ = d.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%02d", i), user{Name: fmt.Sprintf("u%d", i)})
		})
	}
	_ = d.Update(func(tx *Tx) error { return tx.Delete("t", "k05") })

	restored := New()
	if err := restored.Replay(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Seq() != d.Seq() {
		t.Errorf("seq %d != %d", restored.Seq(), d.Seq())
	}
	_ = restored.View(func(tx *Tx) error {
		if tx.Count("t") != 19 {
			t.Errorf("count = %d", tx.Count("t"))
		}
		if tx.Exists("t", "k05") {
			t.Error("deleted key survived replay")
		}
		return nil
	})
}

func TestSnapshotPlusWALTail(t *testing.T) {
	var log bytes.Buffer
	d := New()
	d.AttachWAL(NewWAL(&log))
	_ = d.Update(func(tx *Tx) error { return tx.Put("t", "a", user{Name: "1"}) })

	var snap bytes.Buffer
	if err := d.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	_ = d.Update(func(tx *Tx) error { return tx.Put("t", "b", user{Name: "2"}) })

	restored := New()
	if err := restored.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Full WAL replay skips entries already in the snapshot.
	if err := restored.Replay(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	_ = restored.View(func(tx *Tx) error {
		if !tx.Exists("t", "a") || !tx.Exists("t", "b") {
			t.Errorf("keys = %v", tx.Keys("t"))
		}
		return nil
	})
}

// Property: a random sequence of puts and deletes, replayed through the
// WAL, reconstructs exactly the same table contents.
func TestWALReplayProperty(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}) bool {
		var log bytes.Buffer
		d := New()
		d.AttachWAL(NewWAL(&log))
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				_ = d.Update(func(tx *Tx) error { return tx.Delete("t", key) })
			} else {
				v := user{Name: fmt.Sprintf("v%d", i)}
				_ = d.Update(func(tx *Tx) error { return tx.Put("t", key, v) })
			}
		}
		restored := New()
		if err := restored.Replay(bytes.NewReader(log.Bytes())); err != nil {
			return false
		}
		var a, b []string
		_ = d.View(func(tx *Tx) error { a = tx.Keys("t"); return nil })
		_ = restored.View(func(tx *Tx) error { b = tx.Keys("t"); return nil })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			var ua, ub user
			_ = d.View(func(tx *Tx) error { return tx.Get("t", a[i], &ua) })
			_ = restored.View(func(tx *Tx) error { return tx.Get("t", b[i], &ub) })
			if ua != ub {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCompactBoundsLogGrowth(t *testing.T) {
	var oldLog bytes.Buffer
	d := New()
	d.AttachWAL(NewWAL(&oldLog))
	for i := 0; i < 50; i++ {
		i := i
		_ = d.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i), user{Name: "x"})
		})
	}

	var snap bytes.Buffer
	var newLog bytes.Buffer
	newWAL := NewWAL(&newLog)
	if err := d.Compact(&snap, newWAL); err != nil {
		t.Fatal(err)
	}
	// Post-compaction writes go only to the new log.
	_ = d.Update(func(tx *Tx) error { return tx.Put("t", "after", user{Name: "y"}) })
	if newWAL.Entries() != 1 {
		t.Errorf("new wal entries = %d", newWAL.Entries())
	}
	// Snapshot + new log reconstruct everything; the old log is obsolete.
	restored := New()
	if err := restored.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := restored.Replay(bytes.NewReader(newLog.Bytes())); err != nil {
		t.Fatal(err)
	}
	_ = restored.View(func(tx *Tx) error {
		if tx.Count("t") != 51 {
			t.Errorf("restored count = %d, want 51", tx.Count("t"))
		}
		if !tx.Exists("t", "after") {
			t.Error("post-compaction write lost")
		}
		return nil
	})
}

func TestConcurrentUpdates(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = d.Update(func(tx *Tx) error {
					return tx.Put("t", fmt.Sprintf("g%d-i%d", g, i), user{Name: "x"})
				})
			}
		}(g)
	}
	wg.Wait()
	_ = d.View(func(tx *Tx) error {
		if tx.Count("t") != 400 {
			t.Errorf("count = %d", tx.Count("t"))
		}
		return nil
	})
	if d.Seq() != 400 {
		t.Errorf("seq = %d", d.Seq())
	}
}

func TestReplicaStreams(t *testing.T) {
	primary := New()
	rep := NewReplica(primary)
	defer rep.Stop()
	for i := 0; i < 50; i++ {
		i := i
		_ = primary.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i), user{Name: "x"})
		})
	}
	if !rep.WaitCaughtUp(2 * time.Second) {
		t.Fatalf("replica lag = %d", rep.Lag())
	}
	_ = rep.View(func(tx *Tx) error {
		if tx.Count("t") != 50 {
			t.Errorf("replica count = %d", tx.Count("t"))
		}
		return nil
	})
}

func TestReplicaSeesPreexistingData(t *testing.T) {
	primary := New()
	_ = primary.Update(func(tx *Tx) error { return tx.Put("t", "old", user{Name: "x"}) })
	rep := NewReplica(primary)
	defer rep.Stop()
	if !rep.WaitCaughtUp(time.Second) {
		t.Fatal("lagging")
	}
	_ = rep.View(func(tx *Tx) error {
		if !tx.Exists("t", "old") {
			t.Error("initial snapshot missing data")
		}
		return nil
	})
}

func TestReplicaPromote(t *testing.T) {
	primary := New()
	_ = primary.Update(func(tx *Tx) error { return tx.Put("t", "k", user{Name: "x"}) })
	rep := NewReplica(primary)
	if !rep.WaitCaughtUp(time.Second) {
		t.Fatal("lagging")
	}
	promoted := rep.Promote()
	// The promoted DB accepts writes.
	if err := promoted.Update(func(tx *Tx) error {
		return tx.Put("t", "k2", user{Name: "y"})
	}); err != nil {
		t.Fatal(err)
	}
	_ = promoted.View(func(tx *Tx) error {
		if !tx.Exists("t", "k") || !tx.Exists("t", "k2") {
			t.Error("promoted DB missing data")
		}
		return nil
	})
}

func TestPool(t *testing.T) {
	d := New()
	p := NewPool(d, 2)
	c1, err := p.Get(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 2 {
		t.Errorf("InUse = %d", p.InUse())
	}
	// Third Get times out.
	if _, err := p.Get(20 * time.Millisecond); err == nil {
		t.Error("over-capacity Get succeeded")
	}
	if err := c1.Update(func(tx *Tx) error { return tx.Put("t", "k", user{Name: "x"}) }); err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	p.Put(c1) // double release is safe
	if p.InUse() != 1 {
		t.Errorf("InUse after release = %d", p.InUse())
	}
	c3, err := p.Get(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.View(func(tx *Tx) error {
		if !tx.Exists("t", "k") {
			return errors.New("missing")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p.Put(c2)
	p.Put(c3)
	acq, waits, _ := p.Stats()
	if acq != 3 || waits < 1 {
		t.Errorf("stats: acquired=%d waits=%d", acq, waits)
	}
	// A released connection no longer works.
	if err := c3.View(func(tx *Tx) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("released conn usable: %v", err)
	}
}
