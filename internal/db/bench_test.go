package db

import (
	"bytes"
	"fmt"
	"testing"
)

type benchRec struct {
	Name  string `json:"name"`
	Role  string `json:"role"`
	Count int    `json:"count"`
}

func BenchmarkPut(b *testing.B) {
	d := New()
	for i := 0; i < b.N; i++ {
		err := d.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%4096), benchRec{Name: "x", Count: i})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	d := New()
	_ = d.Update(func(tx *Tx) error {
		for i := 0; i < 4096; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), benchRec{Name: "x", Count: i}); err != nil {
				return err
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r benchRec
		err := d.View(func(tx *Tx) error {
			return tx.Get("t", fmt.Sprintf("k%d", i%4096), &r)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	d := New()
	d.CreateIndex("t", "role")
	_ = d.Update(func(tx *Tx) error {
		for i := 0; i < 4096; i++ {
			role := "student"
			if i%64 == 0 {
				role = "instructor"
			}
			if err := tx.Put("t", fmt.Sprintf("k%d", i), benchRec{Role: role}); err != nil {
				return err
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.View(func(tx *Tx) error {
			if got := tx.IndexLookup("t", "role", "instructor"); len(got) != 64 {
				b.Fatalf("lookup = %d", len(got))
			}
			return nil
		})
	}
}

func BenchmarkWALAppendAndReplay(b *testing.B) {
	b.Run("append", func(b *testing.B) {
		var buf bytes.Buffer
		d := New()
		d.AttachWAL(NewWAL(&buf))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := d.Update(func(tx *Tx) error {
				return tx.Put("t", fmt.Sprintf("k%d", i%1024), benchRec{Count: i})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay-1k", func(b *testing.B) {
		var buf bytes.Buffer
		d := New()
		d.AttachWAL(NewWAL(&buf))
		for i := 0; i < 1000; i++ {
			_ = d.Update(func(tx *Tx) error {
				return tx.Put("t", fmt.Sprintf("k%d", i), benchRec{Count: i})
			})
		}
		log := buf.Bytes()
		b.SetBytes(int64(len(log)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh := New()
			if err := fresh.Replay(bytes.NewReader(log)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReplication(b *testing.B) {
	primary := New()
	rep := NewReplica(primary)
	defer rep.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = primary.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%1024), benchRec{Count: i})
		})
	}
	b.StopTimer()
	rep.WaitCaughtUp(0)
}
