package kernelcheck

import (
	"fmt"

	"webgpu/internal/minicuda"
)

// checkRaces pairs the recorded shared-memory accesses within each
// barrier interval and flags write-write and write-read pairs that are
// neither provably the same thread nor provably disjoint.
//
// The model: within one barrier interval, any two distinct threads'
// accesses may interleave. Two accesses with flattened element indexes
// p(t) and q(t') collide when p(t) = q(t') for some pair of distinct
// threads t ≠ t'. With both indexes affine and sharing their
// thread-term structure, the difference d = p - q is a constant, and
// the collision equation has a distinct-thread solution iff the thread
// coefficients divide d (d = 0 with no thread terms at all means every
// thread hits the same cell). Disjointness falls out of interval
// bounds: when one access's maximum index is provably below the other's
// minimum, they cannot collide — this proves the tree-reduction pattern
// race-free (writers stay below s, readers start at s).
//
// Soundness caveats (see DESIGN.md): two accesses with *identical*
// affine indexes containing a thread term are treated as same-thread
// (s[ty*W+tx] twice is assumed injective in (tx, ty)), and equality
// pins compare by signature (a threadIdx.x==0 pin ignores a possible
// .y extent).
func (a *analyzer) checkRaces() {
	type gkey struct {
		sym      *minicuda.Symbol
		interval int
	}
	groups := make(map[gkey][]int)
	var order []gkey
	for i, ac := range a.accesses {
		if ac.space != minicuda.SpaceShared {
			continue
		}
		k := gkey{ac.sym, ac.interval}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	reported := make(map[string]bool)
	for _, k := range order {
		idxs := groups[k]
		for ii := 0; ii < len(idxs); ii++ {
			for jj := ii + 1; jj < len(idxs); jj++ {
				a.checkPair(idxs[ii], idxs[jj], reported)
			}
		}
	}
}

func (a *analyzer) checkPair(xi, yi int, reported map[string]bool) {
	x, y := a.accesses[xi], a.accesses[yi]
	if !x.write && !y.write {
		return // read-read never races
	}
	if x.atomic && y.atomic {
		return // atomics serialize against each other
	}
	if x.wrapped && y.wrapped {
		// Both copies model the next iteration; their original pairing
		// (in the original intervals) was already checked.
		return
	}
	// A wrap copy exists only while its loop iterates; it cannot race
	// with accesses after the loop (the back-edge was not taken then).
	if x.wrapped && (yi < x.wrapLo || yi >= x.wrapHi) {
		return
	}
	if y.wrapped && (xi < y.wrapLo || xi >= y.wrapHi) {
		return
	}
	if x.pos.Line == y.pos.Line && x.pos.Col == y.pos.Col && x.write == y.write &&
		x.csLine == y.csLine && x.csCol == y.csCol {
		return // the same textual access paired with its own wrap copy
	}
	if sameThread(x, y) {
		return
	}
	if a.disjoint(x, y) {
		return
	}

	key := fmt.Sprintf("%s|%s|%v%v", x.pos.Pos(), y.pos.Pos(), x.write, y.write)
	if reported[key] {
		return
	}
	reported[key] = true

	kind := "write and write"
	switch {
	case x.write && !y.write:
		kind = "write and read"
	case !x.write && y.write:
		kind = "read and write"
	}

	provable := false
	d := affSub(x.idx, y.idx)
	if d != nil && d.isConst() && !x.divRead && !y.divRead && x.pins == "" && y.pins == "" && !x.guarded && !y.guarded {
		provable = true
	}

	name := x.sym.Name
	if provable {
		// A race where either side flowed through a device-function call
		// gets its own rule ID: the fix usually lives at the call sites,
		// not at the access text.
		rule := RuleRace
		if x.via != "" || y.via != "" {
			rule = RuleRaceCall
		}
		a.diag(rule, SevError, y.pos,
			fmt.Sprintf("shared-memory race on %s: %s of %s (%s) and %s (%s) in the same barrier interval; distinct threads touch the same element",
				name, kind, x.expr, x.pos.Pos(), y.expr, y.pos.Pos()),
			"separate the conflicting accesses with __syncthreads()")
	} else {
		a.diag(RuleRaceMaybe, SevWarn, y.pos,
			fmt.Sprintf("possible shared-memory race on %s: %s of %s (%s) and %s (%s) in the same barrier interval",
				name, kind, x.expr, x.pos.Pos(), y.expr, y.pos.Pos()),
			"separate the conflicting accesses with __syncthreads(), or show the threads cannot overlap")
	}
}

// sameThread reports whether two accesses are provably performed by the
// same thread on the same element.
func sameThread(x, y access) bool {
	if x.pins != y.pins {
		return false
	}
	d := affSub(x.idx, y.idx)
	if d == nil || !d.isConst() || d.c != 0 {
		return false
	}
	// Identical indexes. With a thread term, assume injectivity: the
	// same thread computed the same element (documented caveat). With
	// equality pins, a single pinned thread performed both. Without
	// either, every thread hits the same element — not same-thread.
	return x.idx.hasThreadTerms() || x.pins != ""
}

// disjoint reports whether two accesses provably touch different
// elements for every pair of distinct threads.
func (a *analyzer) disjoint(x, y access) bool {
	d := affSub(x.idx, y.idx)
	if d != nil && d.isConst() && d.c != 0 {
		// Same thread-term structure offset by a constant: a collision
		// needs the thread coefficients to divide the offset.
		g := int64(0)
		for _, tc := range x.idx.terms {
			if tc.t.td != tdNone && tc.t.u == "" {
				g = gcd64(g, tc.k)
			}
		}
		if g == 0 {
			return true // no pure thread terms: cells differ for all threads
		}
		if d.c%g != 0 {
			return true
		}
	}
	// Interval separation: x entirely below y or y entirely below x.
	// Besides the recorded (refinement-derived) bounds, each index yields
	// bounds of its own by dropping nonnegative thread terms — e.g.
	// tx + stride has the uniform lower bound stride.
	xlos := [2]*affine{x.lo, a.idxLoBound(x.idx)}
	xhis := [2]*affine{x.hi, a.idxHiBound(x.idx)}
	ylos := [2]*affine{y.lo, a.idxLoBound(y.idx)}
	yhis := [2]*affine{y.hi, a.idxHiBound(y.idx)}
	for _, xh := range xhis {
		for _, yl := range ylos {
			if a.separated(xh, yl) {
				return true
			}
		}
	}
	for _, yh := range yhis {
		for _, xl := range xlos {
			if a.separated(yh, xl) {
				return true
			}
		}
	}
	return false
}

// separated reports whether lo > hi provably (one access range ends
// before the other begins).
func (a *analyzer) separated(hi, lo *affine) bool {
	if hi == nil || lo == nil {
		return false
	}
	s, ok := cmpAff(lo, hi, a.nonneg)
	return ok && s > 0
}

// idxLoBound derives a uniform lower bound from an affine index by
// dropping thread terms with positive coefficients (each is ≥ 0).
// Uniform terms are kept exactly. nil when no bound can be derived.
func (a *analyzer) idxLoBound(idx *affine) *affine {
	return a.idxBound(idx, true)
}

// idxHiBound is the mirror: thread terms with negative coefficients
// contribute at most 0; a positive thread coefficient is unbounded.
func (a *analyzer) idxHiBound(idx *affine) *affine {
	return a.idxBound(idx, false)
}

func (a *analyzer) idxBound(idx *affine, lower bool) *affine {
	if idx == nil {
		return nil
	}
	out := affConst(idx.c)
	for _, tc := range idx.terms {
		t, k := tc.t, tc.k
		if t.td == tdNone {
			out.addTerm(t, k)
			continue
		}
		droppable := (lower && k > 0) || (!lower && k < 0)
		if !droppable {
			return nil
		}
		// Dropping needs the whole product nonnegative: thread ids are,
		// and any uniform factor must be known nonnegative too.
		if t.u != "" && !a.nonneg(t.u) {
			return nil
		}
	}
	return out
}
