package kernelcheck

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"webgpu/internal/minicuda"
)

var update = flag.Bool("update", false, "rewrite golden .diag files from current analyzer output")

// TestCorpus runs the analyzer over every kernel in testdata and
// compares the diagnostics against the golden .diag file next to it.
// Kernels named known_limit_* document analyses the checker is known to
// get wrong (false negatives/positives) — their goldens record today's
// behavior so a change in either direction is visible in review.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 40 {
		t.Errorf("corpus has %d kernels, want at least 40", len(files))
	}
	sort.Strings(files)
	for _, f := range files {
		f := f
		name := strings.TrimSuffix(filepath.Base(f), ".cu")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			dialect := minicuda.DialectCUDA
			if strings.Contains(string(src), "__kernel") {
				dialect = minicuda.DialectOpenCL
			}
			diags, err := AnalyzeSource(string(src), dialect)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var sb strings.Builder
			for _, d := range diags {
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()
			golden := strings.TrimSuffix(f, ".cu") + ".diag"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantB, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(wantB) {
				t.Errorf("diagnostics differ from golden\n--- got ---\n%s--- want ---\n%s", got, wantB)
			}
		})
	}
}

// TestAnalyzeDeterministic re-analyzes one corpus kernel repeatedly and
// requires byte-identical output: map iteration anywhere on a reporting
// path would show up here.
func TestAnalyzeDeterministic(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "race_tiled_missing_sync.cu"))
	if err != nil {
		t.Skip("corpus kernel not present")
	}
	var first string
	for i := 0; i < 20; i++ {
		diags, err := AnalyzeSource(string(src), minicuda.DialectCUDA)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, sb.String(), first)
		}
	}
}
