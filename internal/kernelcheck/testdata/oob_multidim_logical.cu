// True positive (warn): tile[2][17] is inside the flat 16x16 arena but
// column 17 does not exist — the access lands in row 3, the classic
// transposed-tile indexing bug.
__global__ void wrongrow(float *in, float *out, int n) {
  __shared__ float tile[16][16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  tile[ty][tx] = in[ty * 16 + tx];
  __syncthreads();
  out[ty * 16 + tx] = tile[2][17];
}
