// True positive: thread t reads the element thread t-2 writes with no
// barrier in between; the constant offset makes the race provable.
//GUARD: expect=nondet kernel=lag grid=1 block=16 n=16
__global__ void lag(float *in, float *out, int n) {
  __shared__ float s[18];
  int tx = threadIdx.x;
  s[tx + 2] = in[tx];
  out[tx] = s[tx];
}
