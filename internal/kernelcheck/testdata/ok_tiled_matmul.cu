// True negative: the same tiled multiply with both barriers.
__global__ void matmul(float *a, float *b, float *out, int n) {
  __shared__ float sa[16][16];
  __shared__ float sb[16][16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * 16 + ty;
  int col = blockIdx.x * 16 + tx;
  float acc = 0.0f;
  for (int m = 0; m < n / 16; m++) {
    sa[ty][tx] = a[row * n + m * 16 + tx];
    sb[ty][tx] = b[(m * 16 + ty) * n + col];
    __syncthreads();
    for (int k = 0; k < 16; k++) {
      acc = acc + sa[ty][k] * sb[k][tx];
    }
    __syncthreads();
  }
  out[row * n + col] = acc;
}
