// True negative: the canonical grid-stride loop. The step is a runtime
// value, so the checker havocs the induction variable and proves
// nothing — and has nothing to complain about either.
__global__ void gridstride(float *in, float *out, int n) {
  int stride = blockDim.x * gridDim.x;
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i = i + stride) {
    out[i] = in[i] * 2.0f;
  }
}
