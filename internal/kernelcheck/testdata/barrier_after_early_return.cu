// True positive: threads with i >= n return before the barrier.
__global__ void earlyExit(float *in, float *out, int n) {
  __shared__ float s[64];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  if (i >= n) {
    return;
  }
  s[tx] = in[i];
  __syncthreads();
  out[i] = s[tx];
}
