// The same off-by-one behind the usual guard: the guard does not fix the
// minimum, but the branch may exclude it, so this is only a possible OOB.
__global__ void vecShift(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i - 1];
  }
}
