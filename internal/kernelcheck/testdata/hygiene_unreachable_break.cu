// Hygiene: the statement after break never executes.
__global__ void bail(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  float acc = 0.0f;
  for (int k = 0; k < 8; k = k + 1) {
    if (in[k] < 0.0f) {
      break;
      acc = 0.0f;
    }
    acc = acc + in[k];
  }
  out[i] = acc;
}
