// True positive: the barrier only executes for threads with tx < 8.
__global__ void halfSync(float *in, float *out, int n) {
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  if (tx < 8) {
    __syncthreads();
  }
  if (i < n) {
    out[i] = in[i];
  }
}
