// Known limitation (false negative): the race pass only models shared
// memory. If the host passes the same buffer for in and out, the
// neighbor read in[i + 1] races with the write out[i] — the checker
// cannot see pointer aliasing and stays silent.
__global__ void maybealias(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i + 1 < n) {
    out[i] = in[i + 1];
  }
}
