// True positive (advisory): walking a 32-wide row-major matrix down a
// column puts a 128-byte stride between consecutive threads — every lane
// of a warp touches its own memory segment.
__global__ void coldown(float *in, float *out, int n) {
  int tx = threadIdx.x;
  float acc = 0.0f;
  for (int i = 0; i < 32; i = i + 1) {
    acc = acc + in[tx * 32 + i];
  }
  out[tx] = acc;
}
