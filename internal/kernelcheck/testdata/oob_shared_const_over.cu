// True positive: a constant-trip loop sums 40 elements of a 32-element
// shared array. The top of the walk runs past the whole shared arena, so
// the device traps.
//GUARD: expect=trap kernel=sumover grid=1 block=32 n=32
__global__ void sumover(float *in, float *out, int n) {
  __shared__ float s[32];
  int tx = threadIdx.x;
  s[tx] = in[blockIdx.x * blockDim.x + tx];
  __syncthreads();
  float acc = 0.0f;
  for (int i = 0; i < 40; i = i + 1) {
    acc = acc + s[i];
  }
  out[blockIdx.x * blockDim.x + tx] = acc;
}
