// True positive through calls: the helper both touches shared memory
// and syncs; calling it under a thread-dependent condition diverges
// the barrier even though the call site contains no __syncthreads
// text. The summary marks the helper barrier-bearing, and the call
// site's divergence depth does the rest.
__device__ void stage(float *p, int i, float v) {
  p[i] = v;
  __syncthreads();
}

__global__ void copyHalf(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  if (tx < 8) {
    stage(s, tx, in[tx]);
  }
  out[tx] = s[tx];
}
