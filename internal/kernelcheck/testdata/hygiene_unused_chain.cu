// Hygiene: scale is read (so not unused), but halfn is never touched
// after its declaration.
__global__ void halfuse(float *in, float *out, int n) {
  int halfn;
  float scale = 0.5f;
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * scale;
  }
}
