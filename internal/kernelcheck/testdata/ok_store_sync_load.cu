// True negative: the same neighbor exchange with the barrier in place.
__global__ void shift(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in[i];
  __syncthreads();
  out[i] = s[(tx + 1) % 16];
}
