// Clean: the helper's write and the caller's read land in different
// barrier intervals because the helper itself executes the barrier.
// Exercises the summary replay interleaving effects with the barriers
// recorded before them (write at interval 0, barrier, read at 1).
__device__ void putSync(float *p, int i, float v) {
  p[i] = v;
  __syncthreads();
}

__global__ void copy(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  putSync(s, tx, in[tx]);
  out[tx] = s[tx];
}
