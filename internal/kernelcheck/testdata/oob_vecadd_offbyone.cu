// True positive: unguarded i-1 reaches -1 on block 0 / thread 0 and traps.
//GUARD: expect=trap kernel=vecShift grid=2 block=8 n=16
__global__ void vecShift(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in[i - 1];
}
