// True positive: the loop trip count depends on threadIdx, so threads
// reach the barrier different numbers of times.
__global__ void ragged(float *in, float *out, int n) {
  int tx = threadIdx.x;
  float acc = 0.0f;
  for (int i = 0; i < tx; i = i + 1) {
    acc = acc + in[i];
    __syncthreads();
  }
  out[tx] = acc;
}
