// True positive through calls: the off-by-one hides inside a helper.
// The summary records the helper reads p[i-1]; substituting the global
// thread index at the call site gives a minimum of -1, which traps on
// block 0 / thread 0.
//GUARD: expect=trap kernel=vecShift grid=2 block=8 n=16
__device__ float left(float *p, int i) {
  return p[i - 1];
}

__global__ void vecShift(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = left(in, i);
}
