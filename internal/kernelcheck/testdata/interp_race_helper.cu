// True positive through calls: the store and the shifted load both
// live in device helpers, so neither racing access is textually in the
// kernel. Thread t still reads the element thread t+1 writes with no
// barrier between — the effect summaries carry both indexes back to
// the call sites.
//GUARD: expect=nondet kernel=shift grid=1 block=16 n=16
__device__ void store(float *p, int i, float v) {
  p[i] = v;
}

__device__ float loadShift(float *p, int i) {
  return p[i + 1];
}

__global__ void shift(float *in, float *out, int n) {
  __shared__ float s[17];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  store(s, tx, in[i]);
  out[i] = loadShift(s, tx);
}
