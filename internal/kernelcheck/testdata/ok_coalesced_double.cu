// True negative: unit-stride double accesses. Each warp covers two
// 128-byte segments, which is the ideal for 8-byte elements — no
// advisory.
__global__ void dcopy(double *in, double *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i];
  }
}
