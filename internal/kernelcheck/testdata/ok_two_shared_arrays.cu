// True negative: accesses to different shared variables never pair in
// the race check, and the barrier splits the write and read phases.
__global__ void pingpong(float *in, float *out, int n) {
  __shared__ float ping[32];
  __shared__ float pong[32];
  int tx = threadIdx.x;
  ping[tx] = in[tx];
  pong[tx] = in[tx + 32];
  __syncthreads();
  out[tx] = ping[tx] + pong[31 - tx];
}
