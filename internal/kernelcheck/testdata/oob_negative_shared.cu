// True positive: s[tx - 1] reaches arena offset -4 on thread 0; shared
// loads below the arena trap.
//GUARD: expect=trap kernel=neg grid=1 block=16 n=16
__global__ void neg(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  s[tx] = in[tx];
  out[tx] = s[tx - 1];
}
