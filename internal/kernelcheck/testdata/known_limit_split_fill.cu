// Known limitation (false positive): the two-phase fill s[tx] and
// s[tx + 32] is safe when blockDim.x == 32, but the checker does not
// know the launch geometry — with a larger block the ranges genuinely
// overlap, so it reports the constant-offset pair as a race.
__global__ void splitfill(float *in, float *out, int n) {
  __shared__ float s[64];
  int tx = threadIdx.x;
  s[tx] = in[tx];
  s[tx + 32] = in[tx + 32];
  __syncthreads();
  out[tx] = s[tx] + s[tx + 32];
}
