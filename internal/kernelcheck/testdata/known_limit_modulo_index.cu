// Known limitation (weak verdict): (tx + 1) % 16 is not affine, so the
// checker loses the index and can only report a may-race, even though
// the wrap-around neighbor read is a real race.
__global__ void ring(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  s[tx] = in[tx];
  out[tx] = s[(tx + 1) % 16];
}
