// True positive (advisory): a stride of two words maps 32 threads onto
// 16 banks — a 2-way conflict, the mildest case the checker reports.
__global__ void stride2(float *in, float *out, int n) {
  __shared__ float s[64];
  int tx = threadIdx.x;
  s[tx] = in[tx];
  __syncthreads();
  out[tx] = s[tx * 2];
}
