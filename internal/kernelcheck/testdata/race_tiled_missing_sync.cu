// True positive: tiled multiply missing the second __syncthreads. The
// next iteration's tile store races with this iteration's reads.
__global__ void matmul(float *a, float *b, float *out, int n) {
  __shared__ float sa[16][16];
  __shared__ float sb[16][16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * 16 + ty;
  int col = blockIdx.x * 16 + tx;
  float acc = 0.0f;
  for (int m = 0; m < n / 16; m++) {
    sa[ty][tx] = a[row * n + m * 16 + tx];
    sb[ty][tx] = b[(m * 16 + ty) * n + col];
    __syncthreads();
    for (int k = 0; k < 16; k++) {
      acc = acc + sa[ty][k] * sb[k][tx];
    }
  }
  out[row * n + col] = acc;
}
