// True negative: every thread of a warp reads the same shared cell
// (threadIdx.x coefficient zero) — a broadcast, not a bank conflict.
__global__ void bcast(float *in, float *out, int n) {
  __shared__ float row[16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  row[tx] = in[tx];
  __syncthreads();
  out[ty * 16 + tx] = row[ty];
}
