// True negative: guarded OpenCL vector add. get_global_id flattens to
// threadIdx.x plus an opaque group offset; everything stays in range.
__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *c, int n) {
  int i = get_global_id(0);
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}
