// True positive: barrier() under a work-item-dependent condition is a
// divergence hazard in OpenCL exactly as __syncthreads is in CUDA.
__kernel void half(__global float *out, int n) {
  int lid = get_local_id(0);
  if (lid < 32) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = 1.0f;
}
