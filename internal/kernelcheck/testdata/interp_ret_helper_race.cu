// True positive through a returned index: the helper computes the
// shifted index and the racing access itself sits in the kernel, so
// the pair is a direct write against a read whose index flowed out of
// a call. The return-value affine (arg + 1) substitutes cleanly, and
// the race is the plain KC-RACE — no access was replayed from a
// summary, only an index.
//GUARD: expect=nondet kernel=shift grid=1 block=16 n=16
__device__ int shifted(int i) {
  return i + 1;
}

__global__ void shift(float *in, float *out, int n) {
  __shared__ float s[17];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in[i];
  out[i] = s[shifted(tx)];
}
