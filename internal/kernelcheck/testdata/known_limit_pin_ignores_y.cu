// Known limitation (false negative): both accesses to s[0] happen under
// threadIdx.x == 0, and the pin signature treats them as the same
// thread — but with blockDim.y > 1 there is one such thread per row and
// the write-write pair is a real race. The checker stays silent.
__global__ void pinned(float *in, float *out, int n) {
  __shared__ float s[1];
  int ty = threadIdx.y;
  if (threadIdx.x == 0) {
    s[0] = in[ty];
  }
  __syncthreads();
  out[ty] = s[0];
}
