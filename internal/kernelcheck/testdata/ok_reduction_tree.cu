// True negative: the classic tree reduction. Writers (tx < s) stay below
// s while readers reach [s, 2s); the ranges are disjoint, and the barrier
// separates iterations.
__global__ void reduce(float *in, float *out, int n) {
  __shared__ float s[64];
  int tx = threadIdx.x;
  s[tx] = in[blockIdx.x * blockDim.x + tx];
  __syncthreads();
  for (int stride = 32; stride > 0; stride = stride / 2) {
    if (tx < stride) {
      s[tx] = s[tx] + s[tx + stride];
    }
    __syncthreads();
  }
  if (tx == 0) {
    out[blockIdx.x] = s[0];
  }
}
