// True positive: every thread writes s[0] with its own value — a
// write-write race on one cell. (Not guard-runnable: in the simulator's
// serial mode each thread also reads back its own write immediately, so
// the output is order-independent even though the race is real.)
__global__ void lastwins(float *in, float *out, int n) {
  __shared__ float s[1];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  s[0] = in[i];
  out[i] = s[0];
}
