// True positive: the barrier hides inside a device function; calling it
// under a thread-dependent condition is still divergent.
__device__ void settle() {
  __syncthreads();
}

__global__ void viafn(float *in, float *out, int n) {
  int tx = threadIdx.x;
  if (tx < 8) {
    settle();
  }
  out[tx] = in[tx];
}
