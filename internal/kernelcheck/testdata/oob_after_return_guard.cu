// True positive: the early return guards the top end only; in[i - 1]
// still reaches -1 on global thread 0 and traps.
//GUARD: expect=trap kernel=shiftdown grid=2 block=8 n=16
__global__ void shiftdown(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) {
    return;
  }
  out[i] = in[i - 1];
}
