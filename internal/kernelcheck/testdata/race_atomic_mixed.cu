// True positive: an atomicAdd and a plain store to the same shared cell
// still race — atomics only serialize against other atomics.
__global__ void mixed(int *in, int *out, int n) {
  __shared__ int count[1];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  count[0] = 0;
  atomicAdd(&count[0], in[i]);
  out[i] = count[0];
}
