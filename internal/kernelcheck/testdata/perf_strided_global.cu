// Advisory: stride-2 global reads double the warp's segment count.
__global__ void gather(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i * 2];
  }
}
