// True negative: the condition is uniform across the block (it only
// reads a kernel parameter), so every thread takes the same side and the
// barrier is safe.
__global__ void uniformif(float *in, float *out, int n) {
  __shared__ float s[64];
  int tx = threadIdx.x;
  s[tx] = in[tx];
  if (n > 64) {
    __syncthreads();
    out[tx] = s[63 - tx];
  } else {
    out[tx] = s[tx];
  }
}
