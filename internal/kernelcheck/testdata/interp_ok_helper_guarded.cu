// Clean: the call site guards i > 0, so the helper's p[i-1] never goes
// negative. The guard's refinement narrows the argument's interval, and
// bound substitution carries it through the summary — the same helper
// that fires KC-OOB in interp_oob_helper is silent here.
__device__ float left(float *p, int i) {
  return p[i - 1];
}

__global__ void diffs(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = 0.0f;
  if (i > 0 && i < n) {
    out[i] = in[i] - left(in, i);
  }
}
