// Known limit (false negative): inside the helper the guard `i < 8`
// reads a parameter, which the summary models as an opaque uniform
// placeholder — so the barrier is not marked divergent even though the
// kernel passes threadIdx.x and half the block skips it. Catching this
// needs per-call-site taint on summary arguments. The golden records
// today's (silent) behavior.
__device__ void maybeSync(int i) {
  if (i < 8) {
    __syncthreads();
  }
}

__global__ void halfSync(float *in, float *out, int n) {
  int tx = threadIdx.x;
  maybeSync(tx);
  out[tx] = in[tx];
}
