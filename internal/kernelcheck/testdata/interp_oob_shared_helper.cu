// True positive through calls: the helper writes p[i] and the kernel
// passes a constant index past the end of the only shared array, so
// the store lands beyond the block's shared arena and traps.
//GUARD: expect=trap kernel=fill grid=1 block=8 n=16
__device__ void put(float *p, int i, float v) {
  p[i] = v;
}

__global__ void fill(float *in, float *out, int n) {
  __shared__ float s[16];
  int tx = threadIdx.x;
  put(s, 20, in[tx]);
  __syncthreads();
  out[tx] = s[tx];
}
