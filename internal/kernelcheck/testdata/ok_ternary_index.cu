// True negative: a clamped ternary index. The two arms differ, so the
// checker drops to "unknown" — conservatively silent.
__global__ void clamp(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i > 0 ? i - 1 : 0];
  }
}
