// Hygiene: an unused variable, a dead store, and unreachable code.
__global__ void sloppy(float *in, float *out, int n) {
  int unused;
  int dead = 7;
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  dead = 9;
  if (i < n) {
    out[i] = in[i];
    return;
    out[i] = 0.0f;
  }
}
