// Advisory: column-major shared access with a 16-wide tile serializes
// into 16-way bank conflicts.
__global__ void colsum(float *in, float *out, int n) {
  __shared__ float tile[16][16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  tile[ty][tx] = in[ty * 16 + tx];
  __syncthreads();
  out[ty * 16 + tx] = tile[tx][ty];
}
