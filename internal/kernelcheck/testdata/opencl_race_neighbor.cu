// True positive: OpenCL __local neighbor race — no barrier between the
// store to scratch[lid] and the load of scratch[lid + 1].
//GUARD: expect=nondet kernel=blur grid=1 block=64 n=64
__kernel void blur(__global const float *in, __global float *out, int n) {
  __local float scratch[65];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  scratch[lid] = in[gid];
  out[gid] = scratch[lid + 1];
}
