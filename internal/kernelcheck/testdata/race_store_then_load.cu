// True positive: thread t reads the element thread t+1 writes, with no
// barrier between. Provable race; output depends on execution order.
//GUARD: expect=nondet kernel=shift grid=1 block=16 n=16
__global__ void shift(float *in, float *out, int n) {
  __shared__ float s[17];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in[i];
  out[i] = s[tx + 1];
}
