// True positive (warn): reading a[32 + tx] overruns a[32] but lands in
// b, the next variable in the shared arena — no trap, just wrong data.
__global__ void spill(float *in, float *out, int n) {
  __shared__ float a[32];
  __shared__ float b[32];
  int tx = threadIdx.x;
  a[tx] = in[tx];
  b[tx] = in[32 + tx];
  __syncthreads();
  out[tx] = a[32 + tx];
}
