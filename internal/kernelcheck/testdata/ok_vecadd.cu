// True negative: the reference vector-add kernel. No diagnostics.
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
