// True positive (advisory): the stride per threadIdx.x step is a runtime
// value, so consecutive threads land arbitrarily far apart.
__global__ void colread(float *in, float *out, int n) {
  int tx = threadIdx.x;
  out[tx] = in[tx * n];
}
