// True negative: a shared-memory histogram built entirely from
// atomicAdd. Atomic-atomic pairs never race, and the barrier separates
// the accumulation from the read-out.
__global__ void hist(int *in, int *out, int n) {
  __shared__ int bins[16];
  int tx = threadIdx.x;
  bins[tx] = 0;
  __syncthreads();
  atomicAdd(&bins[in[tx] % 16], 1);
  __syncthreads();
  out[tx] = bins[tx];
}
