//kernelcheck:hotpath
package kernelcheck

import (
	"sort"
	"strconv"
	"strings"
)

// The analyzer models integer index expressions as affine sums
//
//	c + Σ coeff_i · term_i
//
// where a term is either a pure thread-index dimension (threadIdx.x/y/z),
// an opaque uniform value (a kernel parameter, a loop variable, a
// blockIdx·blockDim product — anything the same for all threads of a
// block at a given program point), or a product of a thread dimension
// with an opaque uniform (e.g. threadIdx.x * N). Opaque names carry an
// SSA-style version suffix ("i@3") so two uses of a variable only
// compare equal when no assignment can separate them.

// tdim is the thread-index dimension of a term.
type tdim uint8

// Thread dimensions; tdNone marks a uniform term.
const (
	tdNone tdim = iota
	tdX
	tdY
	tdZ
)

func (d tdim) String() string {
	switch d {
	case tdX:
		return "threadIdx.x"
	case tdY:
		return "threadIdx.y"
	case tdZ:
		return "threadIdx.z"
	}
	return ""
}

// term is one linear term: an optional thread dimension times an
// optional uniform factor ("" = 1).
type term struct {
	td tdim
	u  string
}

// termCoeff is one term with its coefficient. Index expressions almost
// always have 1–3 terms, so affines keep them in a short slice sorted by
// term — far cheaper to clone and iterate than a map, and the analyzer
// clones affines on every arithmetic op.
type termCoeff struct {
	t term
	k int64
}

func termLess(a, b term) bool {
	if a.td != b.td {
		return a.td < b.td
	}
	return a.u < b.u
}

// affine is c + Σ coeff·term. A nil *affine means "not representable".
type affine struct {
	c     int64
	terms []termCoeff // sorted by term, zero coefficients removed
}

func affConst(c int64) *affine { return &affine{c: c} }

func affTerm(t term, coeff int64) *affine {
	if coeff == 0 {
		return affConst(0)
	}
	return &affine{terms: []termCoeff{{t, coeff}}}
}

func (a *affine) clone() *affine {
	if a == nil {
		return nil
	}
	b := &affine{c: a.c}
	if len(a.terms) > 0 {
		b.terms = make([]termCoeff, len(a.terms))
		copy(b.terms, a.terms)
	}
	return b
}

func (a *affine) isConst() bool { return a != nil && len(a.terms) == 0 }

// constVal returns the constant value; only meaningful when isConst.
func (a *affine) constVal() int64 { return a.c }

func (a *affine) addTerm(t term, coeff int64) {
	if coeff == 0 {
		return
	}
	i := 0
	for i < len(a.terms) && termLess(a.terms[i].t, t) {
		i++
	}
	if i < len(a.terms) && a.terms[i].t == t {
		a.terms[i].k += coeff
		if a.terms[i].k == 0 {
			a.terms = append(a.terms[:i], a.terms[i+1:]...)
		}
		return
	}
	a.terms = append(a.terms, termCoeff{})
	copy(a.terms[i+1:], a.terms[i:])
	a.terms[i] = termCoeff{t, coeff}
}

func affAdd(a, b *affine) *affine {
	if a == nil || b == nil {
		return nil
	}
	r := a.clone()
	r.c += b.c
	for _, tc := range b.terms {
		r.addTerm(tc.t, tc.k)
	}
	return r
}

func affNeg(a *affine) *affine { return affScale(a, -1) }

func affSub(a, b *affine) *affine { return affAdd(a, affNeg(b)) }

func affScale(a *affine, k int64) *affine {
	if a == nil {
		return nil
	}
	if k == 0 {
		return affConst(0)
	}
	r := &affine{c: a.c * k}
	for _, tc := range a.terms {
		r.addTerm(tc.t, tc.k*k)
	}
	return r
}

// affMul multiplies two affine expressions, distributing term products.
// A product of two thread-dimension terms is not affine and yields nil.
func affMul(a, b *affine) *affine {
	if a == nil || b == nil {
		return nil
	}
	if a.isConst() {
		return affScale(b, a.c)
	}
	if b.isConst() {
		return affScale(a, b.c)
	}
	r := affConst(a.c * b.c)
	for _, tc := range a.terms {
		r.addTerm(tc.t, tc.k*b.c)
	}
	for _, tc := range b.terms {
		r.addTerm(tc.t, tc.k*a.c)
	}
	for _, ta := range a.terms {
		for _, tb := range b.terms {
			if ta.t.td != tdNone && tb.t.td != tdNone {
				return nil // quadratic in thread index
			}
			td := ta.t.td
			if td == tdNone {
				td = tb.t.td
			}
			r.addTerm(term{td: td, u: mulNames(ta.t.u, tb.t.u)}, ta.k*tb.k)
		}
	}
	return r
}

// mulNames combines two uniform factor names into a canonical product
// name: factors sorted and joined with '*'.
func mulNames(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	fs := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(fs)
	return strings.Join(fs, "*")
}

// affEqual reports structural equality.
func affEqual(a, b *affine) bool {
	if a == nil || b == nil {
		return false
	}
	d := affSub(a, b)
	return d.isConst() && d.c == 0
}

// hasThreadTerms reports whether any term involves a thread dimension.
func (a *affine) hasThreadTerms() bool {
	if a == nil {
		return false
	}
	for _, tc := range a.terms {
		if tc.t.td != tdNone {
			return true
		}
	}
	return false
}

// threadCoeff returns the total constant coefficient on dimension d and
// whether d also appears with a symbolic (uniform-product) coefficient.
func (a *affine) threadCoeff(d tdim) (coeff int64, symbolic bool) {
	if a == nil {
		return 0, false
	}
	for _, tc := range a.terms {
		if tc.t.td != d {
			continue
		}
		if tc.t.u == "" {
			coeff += tc.k
		} else {
			symbolic = true
		}
	}
	return coeff, symbolic
}

// gcd64 is the nonnegative gcd.
func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// cmpAff compares a-b against zero: returns (+1, true) when provably
// positive, (-1, true) when provably negative, (0, true) when provably
// zero, and (0, false) when unknown. nonneg reports whether a uniform
// term name is known to be ≥ 0 (builtin indices, guarded loop
// variables); thread-dimension terms are always ≥ 0.
func cmpAff(a, b *affine, nonneg func(string) bool) (int, bool) {
	d := affSub(a, b)
	if d == nil {
		return 0, false
	}
	if d.isConst() {
		switch {
		case d.c > 0:
			return 1, true
		case d.c < 0:
			return -1, true
		}
		return 0, true
	}
	allPos, allNeg := true, true
	for _, tc := range d.terms {
		known := tc.t.td != tdNone || (nonneg != nil && nonneg(tc.t.u))
		if !known {
			return 0, false
		}
		if tc.k < 0 {
			allPos = false
		}
		if tc.k > 0 {
			allNeg = false
		}
	}
	if allPos && d.c >= 0 {
		if d.c > 0 {
			return 1, true
		}
		// Σ (nonneg terms with positive coeffs) ≥ 0; strictness unknown.
		return 1, d.c > 0
	}
	if allNeg && d.c <= 0 {
		if d.c < 0 {
			return -1, true
		}
		return -1, d.c < 0
	}
	return 0, false
}

// geZero reports whether a ≥ 0 provably.
func geZero(a *affine, nonneg func(string) bool) bool {
	if a == nil {
		return false
	}
	if a.isConst() {
		return a.c >= 0
	}
	for _, tc := range a.terms {
		known := tc.t.td != tdNone || (nonneg != nil && nonneg(tc.t.u))
		if !known || tc.k < 0 {
			return false
		}
	}
	return a.c >= 0
}

// stripVersions removes the "@<digits>" SSA suffixes from a rendered
// term name (the hand-rolled equivalent of s/@\d+//g — String runs for
// every recorded access, so no regexp here).
func stripVersions(s string) string {
	i := strings.IndexByte(s, '@')
	if i < 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for {
		j := i + 1
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i+1 {
			// A bare '@' with no digits is not a version suffix.
			sb.WriteString(s[:i+1])
		} else {
			sb.WriteString(s[:i])
		}
		s = s[j:]
		i = strings.IndexByte(s, '@')
		if i < 0 {
			sb.WriteString(s)
			return sb.String()
		}
	}
}

// String renders the affine expression for diagnostics, with version
// suffixes stripped.
func (a *affine) String() string {
	if a == nil {
		return "?"
	}
	type tk struct {
		s string
		k int64
	}
	var parts []tk
	for _, tc := range a.terms {
		name := tc.t.u
		if tc.t.td != tdNone {
			if name == "" {
				name = tc.t.td.String()
			} else {
				name = tc.t.td.String() + "*" + name
			}
		}
		parts = append(parts, tk{stripVersions(name), tc.k})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].s < parts[j].s })
	var sb strings.Builder
	for _, p := range parts {
		if sb.Len() > 0 {
			if p.k >= 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
				p.k = -p.k
			}
		} else if p.k < 0 {
			sb.WriteString("-")
			p.k = -p.k
		}
		if p.k != 1 {
			sb.WriteString(strconv.FormatInt(p.k, 10))
			sb.WriteString("*")
		}
		sb.WriteString(p.s)
	}
	if sb.Len() == 0 {
		return strconv.FormatInt(a.c, 10)
	}
	if a.c > 0 {
		sb.WriteString(" + ")
		sb.WriteString(strconv.FormatInt(a.c, 10))
	} else if a.c < 0 {
		sb.WriteString(" - ")
		sb.WriteString(strconv.FormatInt(-a.c, 10))
	}
	return sb.String()
}

// renameWrapped rewrites opaque factors rooted at a loop-assigned
// variable so a wrap-around copy of an access models the *next*
// iteration's value of that variable rather than this one's.
func (a *affine) renameWrapped(assigned map[string]bool) *affine {
	if a == nil || len(a.terms) == 0 {
		return a
	}
	r := &affine{c: a.c}
	for _, tc := range a.terms {
		t := tc.t
		if t.u != "" {
			fs := strings.Split(t.u, "*")
			changed := false
			for i, f := range fs {
				root := f
				if at := strings.IndexByte(f, '@'); at >= 0 {
					root = f[:at]
				}
				if assigned[root] {
					fs[i] = f + "'"
					changed = true
				}
			}
			if changed {
				sort.Strings(fs)
				t = term{td: t.td, u: strings.Join(fs, "*")}
			}
		}
		r.addTerm(t, tc.k)
	}
	return r
}
