package kernelcheck

// Interprocedural effect summaries. Each device function gets, besides
// the cheap reachability flags (usesBarrier/usesTIdx), a *memory-effect
// summary*: the list of accesses it performs through its pointer
// parameters, with affine indexes expressed over "arg#N" placeholder
// terms, the static sequence of barriers it executes, and its return
// value as an affine over the same terms. Call sites substitute actual
// argument values for the placeholders and replay the effects into the
// caller's access stream, so the race/bounds/divergence passes see
// through calls instead of treating them opaquely.
//
// Summaries are computed in callee-before-caller (reverse topological)
// order; a function on a call cycle falls back to the flags-only
// summary (precise=false) and its call sites degrade to the old opaque
// treatment.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"webgpu/internal/minicuda"
)

// argTerm names the i-th parameter placeholder in summary affines.
func argTerm(i int) string { return "arg#" + strconv.Itoa(i) }

// argIndex parses an "arg#N" placeholder factor name.
func argIndex(f string) (int, bool) {
	if !strings.HasPrefix(f, "arg#") {
		return 0, false
	}
	n, err := strconv.Atoi(f[len("arg#"):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// hasArgTerms reports whether any factor of any term is a parameter
// placeholder.
func hasArgTerms(a *affine) bool {
	if a == nil {
		return false
	}
	for _, tc := range a.terms {
		for _, f := range strings.Split(tc.t.u, "*") {
			if _, ok := argIndex(f); ok {
				return true
			}
		}
	}
	return false
}

// effect is one memory access a device function performs through a
// pointer parameter, in caller-substitutable form.
type effect struct {
	argPos         int // which parameter the pointer base is
	write          bool
	atomic         bool
	idx            *affine // over thread dims, arg#N placeholders, callee-local opaques
	divRead        bool    // under thread-dependent control flow inside the callee
	guarded        bool    // under any control flow inside the callee
	pins           string  // threadIdx equality pins active inside the callee
	barriersBefore int     // barriers the callee executes before this access
	tok            minicuda.Token
	callee         string
}

// barrierInfo is one barrier the callee executes, with the hazard flags
// that held inside the callee when it ran.
type barrierInfo struct {
	div  bool // under thread-dependent control flow inside the callee
	exit bool // reachable after a thread-dependent early return inside the callee
}

// fnSummary is the per-function information calls need. usesBarrier and
// usesTIdx come from a cheap syntactic fixpoint and are always valid;
// the effect fields are only meaningful when precise is set.
type fnSummary struct {
	usesBarrier bool
	usesTIdx    bool

	precise    bool // effects/barriers/ret computed (not a cycle fallback)
	effects    []effect
	barriers   []barrierInfo
	ret        *affine // return value over arg#N/thread terms; nil = unknown
	retTainted bool
}

// summarizeFlags computes the reachability flags with a small fixpoint
// over the call graph (device functions cannot be recursive in practice,
// but the iteration bound keeps a cycle from hanging the analyzer).
func summarizeFlags(prog *minicuda.Program) map[*minicuda.Function]*fnSummary {
	sums := make(map[*minicuda.Function]*fnSummary, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		sums[fn] = &fnSummary{}
	}
	for iter := 0; iter < len(prog.Funcs)+1; iter++ {
		changed := false
		for _, fn := range prog.Funcs {
			s := sums[fn]
			b, t := scanFn(fn, sums)
			if b && !s.usesBarrier {
				s.usesBarrier = true
				changed = true
			}
			if t && !s.usesTIdx {
				s.usesTIdx = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summarize computes the full summaries: flags for every function, and
// effect summaries for device functions in callee-before-caller order.
func summarize(prog *minicuda.Program) map[*minicuda.Function]*fnSummary {
	sums := summarizeFlags(prog)
	calls := calleeMap(prog)
	for _, fn := range topoOrder(prog, calls) {
		if !fn.IsKernel {
			buildEffects(prog, fn, sums)
		}
	}
	return sums
}

// calleeMap returns each function's direct user-function callees,
// deduplicated and sorted by name for determinism.
func calleeMap(prog *minicuda.Program) map[*minicuda.Function][]*minicuda.Function {
	out := make(map[*minicuda.Function][]*minicuda.Function, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		seen := map[*minicuda.Function]bool{}
		var cs []*minicuda.Function
		walkNodes(fn.Body, func(n minicuda.Node) {
			if c, ok := n.(*minicuda.Call); ok && c.Fn != nil && !seen[c.Fn] {
				seen[c.Fn] = true
				cs = append(cs, c.Fn)
			}
		})
		sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
		out[fn] = cs
	}
	return out
}

// topoOrder returns the functions callee-first. Members of a call cycle
// are emitted in first-visit order; buildEffects leaves them imprecise
// because their callees' summaries are not ready.
func topoOrder(prog *minicuda.Program, calls map[*minicuda.Function][]*minicuda.Function) []*minicuda.Function {
	const (
		inProgress = 1
		done       = 2
	)
	state := make(map[*minicuda.Function]int, len(prog.Funcs))
	var order []*minicuda.Function
	var visit func(fn *minicuda.Function)
	visit = func(fn *minicuda.Function) {
		if state[fn] != 0 {
			return
		}
		state[fn] = inProgress
		for _, c := range calls[fn] {
			visit(c)
		}
		state[fn] = done
		order = append(order, fn)
	}
	for _, fn := range prog.Funcs {
		visit(fn)
	}
	return order
}

// buildEffects runs the abstract interpreter over a device function with
// placeholder parameter values and converts the recorded accesses into
// the function's effect summary. A panic (an analyzer bug) leaves the
// summary imprecise rather than failing the whole analysis.
func buildEffects(prog *minicuda.Program, fn *minicuda.Function, sums map[*minicuda.Function]*fnSummary) {
	s := sums[fn]
	defer func() {
		if r := recover(); r != nil {
			s.precise = false
			s.effects, s.barriers, s.ret = nil, nil, nil
		}
	}()

	a := newAnalyzer(prog, fn, sums)
	a.quiet = true
	a.interp = true
	a.trackSummary = true
	paramIdx := make(map[*minicuda.Symbol]int, len(fn.Params))
	for i, p := range fn.Params {
		if p.Sym == nil || p.Sym.Type == nil {
			continue
		}
		if p.Sym.Type.IsInteger() {
			a.env[p.Sym].aff = affTerm(term{u: argTerm(i)}, 1)
		} else if p.Sym.Type.IsPtr() {
			paramIdx[p.Sym] = i
		}
	}
	a.walkStmt(fn.Body)

	s.barriers = a.barrierLog
	for _, ac := range a.accesses {
		if ac.wrapped {
			continue // loop back-edge copies are meaningful only in-body
		}
		pos, ok := paramIdx[ac.sym]
		if !ok {
			continue // not through a pointer parameter; cannot escape
		}
		ef := effect{
			argPos: pos, write: ac.write, atomic: ac.atomic,
			idx: ac.idx, divRead: ac.divRead, guarded: ac.guarded,
			pins: ac.pins, barriersBefore: ac.interval,
			tok: ac.pos, callee: fn.Name,
		}
		// A pin whose value references a parameter compares by rendered
		// signature across call sites with different arguments; demote it
		// to a plain guard so the race pass stays sound.
		if strings.Contains(ef.pins, "arg#") {
			ef.pins, ef.guarded, ef.divRead = "", true, true
		}
		s.effects = append(s.effects, ef)
	}
	if len(a.retEvs) > 0 {
		ret := a.retEvs[0]
		equal := ret.aff != nil
		for _, rv := range a.retEvs[1:] {
			if rv.tainted {
				ret.tainted = true
			}
			if rv.aff == nil || ret.aff == nil || !affEqual(rv.aff, ret.aff) {
				equal = false
			}
		}
		if equal {
			s.ret, s.retTainted = ret.aff, ret.tainted
		} else {
			s.retTainted = true
		}
	}
	s.precise = true
}

// ---- Call-site substitution -------------------------------------------------

// isGlobalUniform reports whether an opaque term name denotes a value
// that is the same uniform in every function (builtin grid geometry), so
// it must survive substitution un-renamed.
func isGlobalUniform(f string) bool {
	return strings.HasPrefix(f, "blockIdx.") ||
		strings.HasPrefix(f, "blockDim.") ||
		strings.HasPrefix(f, "gridDim.") ||
		strings.HasPrefix(f, "__group_off.")
}

// noteBuiltinTerm registers the nonnegativity/attainment facts the
// caller would have learned had it evaluated the builtin itself.
func (a *analyzer) noteBuiltinTerm(f string) {
	switch {
	case strings.HasPrefix(f, "blockIdx."), strings.HasPrefix(f, "__group_off."):
		a.nonnegT[f] = true
		a.attained[f] = true // block/group 0 exists
	case strings.HasPrefix(f, "blockDim."), strings.HasPrefix(f, "gridDim."):
		a.nonnegT[f] = true
	}
}

// localizer renames callee-local opaque terms with a call-site-unique
// prefix so two different calls (or a call and the caller's own locals)
// never alias; global uniforms pass through unchanged.
func (a *analyzer) localizer(tok minicuda.Token) func(string) string {
	prefix := "c" + strconv.Itoa(tok.Line) + "_" + strconv.Itoa(tok.Col) + "~"
	return func(f string) string {
		if isGlobalUniform(f) {
			a.noteBuiltinTerm(f)
			return f
		}
		return prefix + f
	}
}

// substAffine maps a summary affine into the caller's term space:
// arg#N factors become the affine of the N-th argument, other opaque
// factors are localized. nil when any needed argument has no affine
// value or a product leaves the affine domain.
func (a *analyzer) substAffine(src *affine, argEvs []ev, local func(string) string) *affine {
	if src == nil {
		return nil
	}
	out := affConst(src.c)
	for _, tc := range src.terms {
		p := affConst(tc.k)
		if tc.t.td != tdNone {
			p = affMul(p, affTerm(term{td: tc.t.td}, 1))
		}
		if tc.t.u != "" {
			for _, f := range strings.Split(tc.t.u, "*") {
				if n, ok := argIndex(f); ok {
					if n >= len(argEvs) || argEvs[n].aff == nil {
						return nil
					}
					p = affMul(p, argEvs[n].aff)
				} else {
					p = affMul(p, affTerm(term{u: local(f)}, 1))
				}
			}
		}
		out = affAdd(out, p)
		if out == nil {
			return nil
		}
	}
	return out
}

// substBounds derives caller-context interval bounds for a summary
// affine: arg#N terms use the argument's bounds, nonnegative terms
// (thread dims, builtin uniforms, nonnegative arguments) bound one side
// at zero, anything else loses that side.
func (a *analyzer) substBounds(src *affine, argEvs []ev) (lo, hi *affine, loT, hiT bool) {
	if src == nil {
		return nil, nil, false, false
	}
	lo, hi = affConst(src.c), affConst(src.c)
	loT, hiT = true, true
	for _, tc := range src.terms {
		if n, ok := argIndex(tc.t.u); ok && tc.t.td == tdNone && !strings.Contains(tc.t.u, "*") {
			var av ev
			if n < len(argEvs) {
				av = argEvs[n]
			}
			tlo, thi, tloT, thiT := scaleRange(av, tc.k)
			lo = affAdd(lo, tlo)
			hi = affAdd(hi, thi)
			loT = loT && tloT
			hiT = hiT && thiT
			continue
		}
		if a.termNonnegSubst(tc.t, argEvs) {
			if tc.k > 0 {
				hi = nil // unbounded above
				if !a.termAttainsZeroSubst(tc.t, argEvs) {
					loT = false
				}
			} else {
				lo = nil
				if !a.termAttainsZeroSubst(tc.t, argEvs) {
					hiT = false
				}
			}
			continue
		}
		return nil, nil, false, false
	}
	if lo == nil {
		loT = false
	}
	if hi == nil {
		hiT = false
	}
	return lo, hi, loT, hiT
}

// termNonnegSubst reports whether a summary term is provably ≥ 0 once
// arguments are substituted.
func (a *analyzer) termNonnegSubst(t term, argEvs []ev) bool {
	if t.u == "" {
		return t.td != tdNone
	}
	for _, f := range strings.Split(t.u, "*") {
		if n, ok := argIndex(f); ok {
			if n >= len(argEvs) || !geZero(argEvs[n].lo, a.nonneg) {
				return false
			}
			continue
		}
		if !isGlobalUniform(f) {
			return false
		}
	}
	return true
}

// termAttainsZeroSubst reports whether the term provably takes the value
// 0 on some real thread (one zero factor zeroes the product).
func (a *analyzer) termAttainsZeroSubst(t term, argEvs []ev) bool {
	if t.td != tdNone {
		return true // thread 0 exists
	}
	for _, f := range strings.Split(t.u, "*") {
		if n, ok := argIndex(f); ok {
			av := ev{}
			if n < len(argEvs) {
				av = argEvs[n]
			}
			if av.lo != nil && av.lo.isConst() && av.lo.c == 0 && av.loTight {
				return true
			}
			continue
		}
		if strings.HasPrefix(f, "blockIdx.") || strings.HasPrefix(f, "__group_off.") {
			return true
		}
	}
	return false
}

// mergePins unions two pin signatures.
func mergePins(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	set := map[string]bool{}
	for _, p := range strings.Split(a, ",") {
		set[p] = true
	}
	for _, p := range strings.Split(b, ",") {
		set[p] = true
	}
	parts := make([]string, 0, len(set))
	for p := range set {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// peelPtrArg resolves a pointer-typed call argument to its base variable
// plus an optional element offset expression: `s`, `s + k`, `k + s`,
// `s - k`. Anything else is unresolvable (the effect is dropped, a
// documented under-approximation).
func peelPtrArg(e minicuda.Expr) (vr *minicuda.VarRef, off minicuda.Expr, neg bool) {
	isBase := func(x minicuda.Expr) *minicuda.VarRef {
		v, ok := x.(*minicuda.VarRef)
		if !ok || v.Sym == nil || v.Sym.Type == nil {
			return nil
		}
		if v.Sym.Type.IsPtr() || v.Sym.Type.Kind == minicuda.KArray {
			return v
		}
		return nil
	}
	if v := isBase(e); v != nil {
		return v, nil, false
	}
	if b, ok := e.(*minicuda.Binary); ok {
		switch b.Op {
		case "+":
			if v := isBase(b.L); v != nil {
				return v, b.R, false
			}
			if v := isBase(b.R); v != nil {
				return v, b.L, false
			}
		case "-":
			if v := isBase(b.L); v != nil {
				return v, b.R, true
			}
		}
	}
	return nil, nil, false
}

// applyCall replays a precise callee summary at a call site: barriers
// and effects interleave in callee order, placeholder terms are
// substituted with the actual arguments, and the return value (when the
// callee returns a single affine) flows back to the caller.
func (a *analyzer) applyCall(x *minicuda.Call, s *fnSummary, argEvs []ev) ev {
	local := a.localizer(x.Tok())
	done := 0
	for i := range s.effects {
		ef := &s.effects[i]
		for done < ef.barriersBefore && done < len(s.barriers) {
			a.callBarrier(x.Tok(), x.Name, s.barriers[done])
			done++
		}
		a.replayEffect(x, ef, argEvs, local)
	}
	for done < len(s.barriers) {
		a.callBarrier(x.Tok(), x.Name, s.barriers[done])
		done++
	}

	tainted := s.usesTIdx || s.retTainted
	for _, av := range argEvs {
		tainted = tainted || av.tainted
	}
	out := evUnknown(tainted)
	if s.ret != nil {
		if sub := a.substAffine(s.ret, argEvs, local); sub != nil {
			out.aff = sub
			out.lo, out.hi, out.loTight, out.hiTight = a.substBounds(s.ret, argEvs)
			out.tainted = out.tainted || sub.hasThreadTerms()
		}
	}
	return out
}

// callBarrier closes a barrier interval reached through a device-
// function call and reports divergence hazards at the call site.
func (a *analyzer) callBarrier(tok minicuda.Token, callee string, bi barrierInfo) {
	if a.record {
		if a.trackSummary {
			a.barrierLog = append(a.barrierLog, barrierInfo{
				div:  bi.div || a.divDepth > 0,
				exit: bi.exit || (a.exitWarn && a.divDepth == 0),
			})
		}
		k := site(tok, callee)
		if !a.barrierDivSeen[k] {
			switch {
			case a.divDepth > 0:
				a.barrierDivSeen[k] = true
				a.diag(RuleBarrierCallDiv, SevWarn, tok,
					fmt.Sprintf("call to %q executes __syncthreads under thread-dependent control flow; threads that skip the call deadlock or diverge the barrier", callee),
					"hoist the call (or its barrier) out of the conditional so every thread of the block reaches it")
			case bi.div:
				a.barrierDivSeen[k] = true
				a.diag(RuleBarrierCallDiv, SevWarn, tok,
					fmt.Sprintf("%q performs __syncthreads under thread-dependent control flow inside the callee; threads that skip it deadlock or diverge the barrier", callee),
					"make the barrier unconditional inside the callee, or sync in the caller instead")
			case bi.exit || a.exitWarn:
				a.barrierDivSeen[k] = true
				a.diag(RuleBarrierExit, SevWarn, tok,
					fmt.Sprintf("call to %q reaches __syncthreads after a thread-dependent early return; exited threads never arrive at the barrier", callee),
					"replace the early return with a guard around the work so all threads still reach the barrier")
			}
		}
	}
	a.interval++
}

// replayEffect records one callee effect in the caller's context.
func (a *analyzer) replayEffect(x *minicuda.Call, ef *effect, argEvs []ev, local func(string) string) {
	if ef.argPos >= len(x.Args) {
		return
	}
	vr, offExpr, neg := peelPtrArg(x.Args[ef.argPos])
	if vr == nil {
		return
	}
	iv := ev{tainted: true}
	if sub := a.substAffine(ef.idx, argEvs, local); sub != nil {
		iv.aff = sub
		iv.lo, iv.hi, iv.loTight, iv.hiTight = a.substBounds(ef.idx, argEvs)
	}
	if offExpr != nil {
		ov := a.snapshotEval(offExpr)
		if neg {
			ov = ev{aff: affNeg(ov.aff), lo: affNeg(ov.hi), hi: affNeg(ov.lo),
				loTight: ov.hiTight, hiTight: ov.loTight, tainted: ov.tainted}
		}
		iv = ev{aff: affAdd(iv.aff, ov.aff), tainted: true,
			lo: affAdd(iv.lo, ov.lo), hi: affAdd(iv.hi, ov.hi),
			loTight: iv.loTight && ov.loTight, hiTight: iv.hiTight && ov.hiTight}
	}

	divRead := ef.divRead || a.divDepth > 0
	guarded := ef.guarded || a.anyDepth > 0
	pins := mergePins(ef.pins, a.pinSig())
	expr := vr.Name + "[" + iv.aff.String() + "] via " + ef.callee
	bt := vr.Sym.Type

	if bt.IsPtr() {
		if a.record {
			a.accesses = append(a.accesses, access{
				sym: vr.Sym, space: minicuda.SpaceGlobal, write: ef.write, atomic: ef.atomic,
				interval: a.interval, idx: iv.aff, lo: a.uniformBound(iv.lo), hi: a.uniformBound(iv.hi),
				divRead: divRead, guarded: guarded, pins: pins,
				pos: ef.tok, expr: expr, via: ef.callee,
				csLine: x.Tok().Line, csCol: x.Tok().Col,
			})
		}
		a.checkPtrLower(vr.Name, iv, ef.tok, !guarded, ef.callee)
		return
	}
	if bt.Kind == minicuda.KArray && bt.Elem != nil && bt.Elem.Kind != minicuda.KArray {
		space := bt.Space
		if vr.Sym.Kind == minicuda.SymShared {
			space = minicuda.SpaceShared
		}
		if a.record {
			a.accesses = append(a.accesses, access{
				sym: vr.Sym, space: space, write: ef.write, atomic: ef.atomic,
				interval: a.interval, idx: iv.aff, lo: a.uniformBound(iv.lo), hi: a.uniformBound(iv.hi),
				divRead: divRead, guarded: guarded, pins: pins,
				pos: ef.tok, expr: expr, via: ef.callee,
				csLine: x.Tok().Line, csCol: x.Tok().Col,
			})
		}
		a.checkArrayBounds(vr, []int{bt.Len}, nil, iv, int64(bt.Len), bt.Elem, space, ef.tok, !guarded, ef.callee)
	}
}
