package kernelcheck

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webgpu/internal/minicuda"
)

func renderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// incUnitSrc has a helper called by the first kernel only, so edits to
// the helper must invalidate exactly {scale, kA} and edits to kB must
// invalidate exactly {kB}.
const incUnitSrc = `__device__ float scale(float *p, int i) {
  return p[i] * 2.0f;
}

__global__ void kA(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = scale(in, i);
  }
}

__global__ void kB(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] + 1.0f;
  }
}
`

func compileT(t testing.TB, src string) *minicuda.Program {
	t.Helper()
	prog, err := minicuda.Compile(src, minicuda.DialectCUDA)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// checkRun asserts one incremental run against a from-scratch Analyze
// of the same program and against the expected work split.
func checkRun(t *testing.T, inc *Incremental, prog *minicuda.Program, wantAnalyzed, wantReused int) {
	t.Helper()
	res := inc.Analyze(prog)
	if got, want := renderDiags(res.Diagnostics), renderDiags(Analyze(prog)); got != want {
		t.Fatalf("incremental diagnostics diverge from full run:\nincremental:\n%s\nfull:\n%s", got, want)
	}
	if res.Analyzed != wantAnalyzed || res.Reused != wantReused {
		t.Fatalf("work split: analyzed=%d reused=%d, want analyzed=%d reused=%d",
			res.Analyzed, res.Reused, wantAnalyzed, wantReused)
	}
}

func TestIncrementalInvalidation(t *testing.T) {
	inc := NewIncremental()

	// Cold start: everything analyzed.
	checkRun(t, inc, compileT(t, incUnitSrc), 3, 0)

	// Same source recompiled: everything reused.
	checkRun(t, inc, compileT(t, incUnitSrc), 0, 3)

	// Edit kB's body (same line count, so no position shifts elsewhere):
	// only kB recomputes.
	editB := strings.Replace(incUnitSrc, "in[i] + 1.0f", "in[i] + 2.0f", 1)
	checkRun(t, inc, compileT(t, editB), 1, 2)

	// Edit the helper: the helper and its caller kA recompute; kB (which
	// never calls it) is reused.
	editH := strings.Replace(editB, "p[i] * 2.0f", "p[i] * 4.0f", 1)
	checkRun(t, inc, compileT(t, editH), 2, 1)

	// Back to the previous draft one run later: the two-generation
	// retention kept kB's entry warm, but scale/kA were overwritten by
	// the edited versions (the cache is keyed by function name), so they
	// recompute.
	checkRun(t, inc, compileT(t, editB), 2, 1)
}

// TestIncrementalMatchesFullOnCorpusMutations is the byte-identity
// fuzz: walk every corpus kernel through a chain of random single-digit
// mutations, re-analyzing each compilable step with a persistent
// incremental engine, and require the rendered diagnostics to equal a
// from-scratch run exactly. Deterministically seeded so failures
// reproduce.
func TestIncrementalMatchesFullOnCorpusMutations(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus kernels")
	}
	rng := rand.New(rand.NewSource(0x5eed))
	totalReused, partialRuns, steps := 0, 0, 0
	for _, f := range files {
		srcB, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		dialect := minicuda.DialectCUDA
		if strings.Contains(string(srcB), "__kernel") {
			dialect = minicuda.DialectOpenCL
		}
		check := func(src []byte, inc *Incremental) bool {
			prog, err := minicuda.Compile(string(src), dialect)
			if err != nil {
				return false // mutation broke the program; skip the step
			}
			res := inc.Analyze(prog)
			got, want := renderDiags(res.Diagnostics), renderDiags(Analyze(prog))
			if got != want {
				t.Fatalf("%s: incremental diverges from full after mutation:\nsource:\n%s\nincremental:\n%s\nfull:\n%s",
					f, src, got, want)
			}
			totalReused += res.Reused
			if res.Analyzed < res.Total {
				partialRuns++
			}
			steps++
			return true
		}

		inc := NewIncremental()
		cur := append([]byte(nil), srcB...)
		if !check(cur, inc) {
			continue // corpus kernel itself must compile; Glob'd set does
		}
		var digits []int
		for i, b := range cur {
			if b >= '0' && b <= '9' {
				digits = append(digits, i)
			}
		}
		if len(digits) == 0 {
			continue
		}
		for round := 0; round < 20; round++ {
			mut := append([]byte(nil), cur...)
			mut[digits[rng.Intn(len(digits))]] = byte('0' + rng.Intn(10))
			if check(mut, inc) {
				cur = mut
			}
		}
	}
	if steps == 0 {
		t.Fatal("fuzz performed no steps")
	}
	if totalReused == 0 {
		t.Error("fuzz never reused a cached function result")
	}
	if partialRuns == 0 {
		t.Error("fuzz never observed a partial (analyzed < total) run")
	}
	t.Logf("fuzz: %d steps, %d with reuse, %d functions spliced from cache", steps, partialRuns, totalReused)
}

// benchSrc builds an 8-function program whose last kernel embeds tag,
// so two tags give two drafts differing in exactly one function with
// identical line numbering.
func benchSrc(tag string) string {
	var sb strings.Builder
	sb.WriteString("__device__ float scale(float *p, int i) {\n  return p[i] * 2.0f;\n}\n")
	for k := 0; k < 6; k++ {
		fmt.Fprintf(&sb, "__global__ void k%d(float *in, float *out, int n) {\n", k)
		sb.WriteString("  int i = blockIdx.x * blockDim.x + threadIdx.x;\n")
		sb.WriteString("  if (i < n) {\n    out[i] = scale(in, i);\n  }\n}\n")
	}
	fmt.Fprintf(&sb, "__global__ void draft(float *in, float *out, int n) {\n")
	sb.WriteString("  int i = blockIdx.x * blockDim.x + threadIdx.x;\n")
	fmt.Fprintf(&sb, "  if (i < n) {\n    out[i] = in[i] + %s;\n  }\n}\n", tag)
	return sb.String()
}

// BenchmarkIncrementalReanalyze measures the dev-loop steady state: a
// student alternates edits to one kernel of an 8-function file, and
// each re-analysis should splice the other 7 functions from cache.
func BenchmarkIncrementalReanalyze(b *testing.B) {
	progA := compileT(b, benchSrc("1.0f"))
	progB := compileT(b, benchSrc("2.0f"))
	inc := NewIncremental()
	inc.Analyze(progA) // warm
	b.ReportAllocs()
	b.ResetTimer()
	analyzed, reused, total := 0, 0, 0
	for i := 0; i < b.N; i++ {
		p := progA
		if i%2 == 1 {
			p = progB
		}
		res := inc.Analyze(p)
		analyzed += res.Analyzed
		reused += res.Reused
		total += res.Total
	}
	b.StopTimer()
	if reused == 0 {
		b.Fatal("no cached function results reused")
	}
	if b.N > 1 && analyzed >= total {
		b.Fatalf("no incremental win: analyzed %d of %d function runs", analyzed, total)
	}
}
