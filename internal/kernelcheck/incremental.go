package kernelcheck

// Function-granular incremental re-analysis. Each function's analysis
// result (its effect summary plus the diagnostics its passes emitted)
// is keyed by a content hash of everything the result can depend on:
//
//	key(f) = H(preludeHash ‖ RulesetVersion ‖ structHash(f) ‖ key(callee₁) ‖ …)
//
// with callees sorted by name. The structural hash covers token
// positions, so a hit means the cached diagnostics (which embed
// "line:col" in Pos and in message text) are verbatim-valid — splicing
// them is trivially byte-identical to recomputing. Edits that shift a
// function's text invalidate it and everything that (transitively)
// calls it; functions on a call cycle are never cached.

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sync"

	"webgpu/internal/minicuda"
)

// Result is the outcome of one analysis run: the (position-sorted)
// diagnostics plus how much work the run actually did.
type Result struct {
	Diagnostics []Diagnostic
	Analyzed    int // functions re-analyzed this run
	Reused      int // functions spliced from cache
	Total       int // functions in the program
}

type cachedFn struct {
	key   string
	sum   *fnSummary
	diags []Diagnostic
	gen   uint64
}

// Incremental caches per-function analysis results across successive
// compiles of an evolving source (one engine per live dev session).
// Safe for concurrent use. The zero value is not usable; call
// NewIncremental.
type Incremental struct {
	mu    sync.Mutex
	funcs map[string]*cachedFn
	gen   uint64
}

// NewIncremental returns an empty incremental analysis engine.
func NewIncremental() *Incremental {
	return &Incremental{funcs: make(map[string]*cachedFn)}
}

// Analyze runs the analysis pipeline over a compiled program, reusing
// cached per-function results where the cache key matches. The
// diagnostics are byte-identical to a from-scratch Analyze of the same
// program (fuzz-checked in incremental_test.go).
func (inc *Incremental) Analyze(prog *minicuda.Program) Result {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.gen++
	res := analyzeProgram(prog, inc)
	// Two-generation retention: entries untouched by this run survive
	// one more run (alternating drafts stay warm), then fall out so the
	// cache stays proportional to the live source.
	for name, e := range inc.funcs {
		if e.gen+1 < inc.gen {
			delete(inc.funcs, name)
		}
	}
	return res
}

// computeKeys derives each function's cache key and whether it is
// cacheable at all (functions on a call cycle are not: their summaries
// are order-dependent fallbacks).
func computeKeys(prog *minicuda.Program, calls map[*minicuda.Function][]*minicuda.Function) (map[*minicuda.Function]string, map[*minicuda.Function]bool) {
	prelude := prog.PreludeHash()
	keys := make(map[*minicuda.Function]string, len(prog.Funcs))
	cacheable := make(map[*minicuda.Function]bool, len(prog.Funcs))
	const (
		inProgress = 1
		done       = 2
	)
	state := make(map[*minicuda.Function]int, len(prog.Funcs))
	var visit func(fn *minicuda.Function)
	visit = func(fn *minicuda.Function) {
		if state[fn] != 0 {
			return
		}
		state[fn] = inProgress
		ok := true
		for _, c := range calls[fn] {
			visit(c)
			if state[c] != done || !cacheable[c] {
				ok = false // cycle member, or depends on one
			}
		}
		h := sha256.New()
		io.WriteString(h, prelude)
		io.WriteString(h, RulesetVersion)
		io.WriteString(h, fn.StructuralHash())
		for _, c := range calls[fn] {
			io.WriteString(h, keys[c])
		}
		keys[fn] = hex.EncodeToString(h.Sum(nil))
		cacheable[fn] = ok
		state[fn] = done
	}
	for _, fn := range prog.Funcs {
		visit(fn)
	}
	return keys, cacheable
}
