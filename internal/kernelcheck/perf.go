package kernelcheck

import (
	"fmt"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
)

// checkPerf emits performance advisories from the recorded accesses,
// using the simulator's own cost-model constants so the advice matches
// what the timing the student sees will charge.
//
// Both rules reason about the threadIdx.x coefficient of the flattened
// index, under the warp model the simulator uses: warps are runs of 32
// consecutive flattened thread ids, so for the common blockDim.x ≥ 32
// layouts the lanes of a warp differ only in threadIdx.x.
func (a *analyzer) checkPerf() {
	cm := gpusim.CostParams()
	seen := make(map[siteKey]bool)
	for _, ac := range a.accesses {
		if ac.wrapped || ac.idx == nil {
			continue
		}
		key := site(ac.pos, ac.sym.Name)
		if seen[key] {
			continue
		}
		elemSize := elemSizeOf(ac.sym)
		coeff, symbolic := ac.idx.threadCoeff(tdX)
		switch ac.space {
		case minicuda.SpaceGlobal:
			if symbolic {
				seen[key] = true
				a.diag(RuleCoalesce, SevInfo, ac.pos,
					fmt.Sprintf("%s strides global memory by a runtime value per threadIdx.x step; consecutive threads touch distant addresses",
						ac.expr),
					fmt.Sprintf("make threadIdx.x the fastest-varying index so a warp covers one %d-byte segment (%d cycles each)",
						cm.SegmentBytes, cm.LatGlobalTx))
				continue
			}
			strideBytes := abs64(coeff) * int64(elemSize)
			if strideBytes == 0 {
				continue // uniform broadcast
			}
			warp := int64(32)
			segs := (warp*strideBytes + int64(cm.SegmentBytes) - 1) / int64(cm.SegmentBytes)
			ideal := (warp*int64(elemSize) + int64(cm.SegmentBytes) - 1) / int64(cm.SegmentBytes)
			if segs > ideal {
				seen[key] = true
				a.diag(RuleCoalesce, SevInfo, ac.pos,
					fmt.Sprintf("%s has a %d-byte stride per threadIdx.x step: each warp access touches ~%d %d-byte segments instead of %d, costing %d cycles each",
						ac.expr, strideBytes, segs, cm.SegmentBytes, ideal, cm.LatGlobalTx),
					"reorder the index so consecutive threads read consecutive elements")
			}
		case minicuda.SpaceShared:
			if symbolic || elemSize == 0 {
				continue
			}
			byteStride := abs64(coeff) * int64(elemSize)
			if byteStride == 0 || byteStride%int64(cm.BankWidthBytes) != 0 {
				continue
			}
			wordStride := byteStride / int64(cm.BankWidthBytes)
			degree := gcd64(wordStride, int64(cm.NumBanks))
			if degree >= 2 {
				seen[key] = true
				a.diag(RuleBankConflict, SevInfo, ac.pos,
					fmt.Sprintf("%s strides shared memory by %d words per threadIdx.x step: with %d banks this serializes into %d-way bank conflicts",
						ac.expr, wordStride, cm.NumBanks, degree),
					"swap the index order (or pad the row) so consecutive threads hit consecutive banks")
			}
		}
	}
}

func elemSizeOf(sym *minicuda.Symbol) int {
	if sym == nil || sym.Type == nil {
		return 0
	}
	t := sym.Type
	if t.IsPtr() {
		return t.Elem.Size()
	}
	return t.ElemBase().Size()
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
