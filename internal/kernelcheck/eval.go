package kernelcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"webgpu/internal/minicuda"
)

// eval abstractly interprets an expression, recording memory accesses
// and bounds findings along the way.
func (a *analyzer) eval(e minicuda.Expr) ev {
	switch x := e.(type) {
	case *minicuda.IntLit:
		return evConst(x.Val)
	case *minicuda.BoolLit:
		if x.Val {
			return evConst(1)
		}
		return evConst(0)
	case *minicuda.FloatLit:
		return evUnknown(false)
	case *minicuda.VarRef:
		return a.evalVar(x)
	case *minicuda.BuiltinVarRef:
		return a.evalBuiltinVar(x)
	case *minicuda.Unary:
		return a.evalUnary(x)
	case *minicuda.Postfix:
		old := a.eval(x.X)
		a.assignTo(x.X, evUnknown(old.tainted), true)
		return old
	case *minicuda.Binary:
		return a.evalBinary(x)
	case *minicuda.Assign:
		return a.evalAssign(x)
	case *minicuda.Ternary:
		return a.evalTernary(x)
	case *minicuda.Index:
		return a.evalIndex(x, false, false)
	case *minicuda.Call:
		return a.evalCall(x)
	case *minicuda.Cast:
		v := a.eval(x.X)
		if !x.To.IsInteger() {
			v.aff, v.lo, v.hi = nil, nil, nil
		}
		return v
	}
	return evUnknown(false)
}

func (a *analyzer) evalVar(x *minicuda.VarRef) ev {
	vi := a.env[x.Sym]
	if vi == nil {
		vi = &varInfo{ver: a.nextVer()}
		a.env[x.Sym] = vi
	}
	if x.Sym.Type != nil && !x.Sym.Type.IsInteger() {
		// Arrays/pointers/floats: the name itself is not an index value.
		return evUnknown(vi.tainted)
	}
	v := ev{tainted: vi.tainted, lo: vi.lo, hi: vi.hi, loTight: vi.loT, hiTight: vi.hiT}
	if vi.aff != nil {
		v.aff = vi.aff
		rlo, rhi, rloT, rhiT := a.rangeOf(vi.aff)
		if v.lo == nil {
			v.lo, v.loTight = rlo, rloT
		}
		if v.hi == nil {
			v.hi, v.hiTight = rhi, rhiT
		}
		return v
	}
	name := x.Name + "@" + strconv.Itoa(vi.ver)
	if vi.knownNneg || geZero(vi.lo, a.nonneg) {
		a.nonnegT[name] = true
	}
	if !vi.tainted {
		v.aff = affTerm(term{u: name}, 1)
	}
	return v
}

func (a *analyzer) evalBuiltinVar(x *minicuda.BuiltinVarRef) ev {
	d := tdim(x.Dim + 1) // Dim 0..2 → tdX..tdZ
	switch x.Base {
	case "threadIdx":
		r := a.tx[x.Dim]
		if r.pin != nil {
			v := ev{aff: r.pin, tainted: false}
			v.lo, v.hi, v.loTight, v.hiTight = a.rangeOf(r.pin)
			return v
		}
		v := ev{aff: affTerm(term{td: d}, 1), tainted: true, lo: affConst(0), loTight: true}
		if r.lo != nil {
			v.lo, v.loTight = r.lo, false
		}
		v.hi = r.hi
		return v
	case "blockIdx", "blockDim", "gridDim":
		name := x.Base + "." + [3]string{"x", "y", "z"}[x.Dim]
		a.nonnegT[name] = true
		lo := int64(0)
		if x.Base == "blockDim" || x.Base == "gridDim" {
			lo = 1
		} else {
			a.attained[name] = true // block 0 exists
		}
		return ev{aff: affTerm(term{u: name}, 1), lo: affConst(lo), loTight: x.Base == "blockIdx"}
	}
	return evUnknown(true)
}

func (a *analyzer) evalUnary(x *minicuda.Unary) ev {
	switch x.Op {
	case "+":
		return a.eval(x.X)
	case "-":
		v := a.eval(x.X)
		return ev{aff: affNeg(v.aff), lo: affNeg(v.hi), hi: affNeg(v.lo),
			loTight: v.hiTight, hiTight: v.loTight, tainted: v.tainted}
	case "!", "~":
		v := a.eval(x.X)
		return evUnknown(v.tainted)
	case "++", "--":
		old := a.eval(x.X)
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		nv := ev{aff: affAdd(old.aff, affConst(delta)), tainted: old.tainted,
			lo: affAdd(old.lo, affConst(delta)), hi: affAdd(old.hi, affConst(delta)),
			loTight: old.loTight, hiTight: old.hiTight}
		a.assignTo(x.X, nv, false)
		return nv
	case "*":
		// Deref of a pointer: model as index 0 when the operand is a
		// plain parameter pointer.
		if vr, ok := x.X.(*minicuda.VarRef); ok && vr.Sym != nil && vr.Sym.Type != nil && vr.Sym.Type.IsPtr() {
			a.recordPtrAccess(vr, evConst(0), false, false, x.Tok())
			return evUnknown(false)
		}
		v := a.eval(x.X)
		return evUnknown(v.tainted)
	case "&":
		v := a.eval(x.X)
		return evUnknown(v.tainted)
	}
	return evUnknown(a.eval(x.X).tainted)
}

func (a *analyzer) evalBinary(x *minicuda.Binary) ev {
	l := a.eval(x.L)
	r := a.eval(x.R)
	t := l.tainted || r.tainted
	switch x.Op {
	case "+":
		return ev{aff: affAdd(l.aff, r.aff), tainted: t,
			lo: affAdd(l.lo, r.lo), hi: affAdd(l.hi, r.hi),
			loTight: l.loTight && r.loTight, hiTight: l.hiTight && r.hiTight}
	case "-":
		return ev{aff: affSub(l.aff, r.aff), tainted: t,
			lo: affSub(l.lo, r.hi), hi: affSub(l.hi, r.lo),
			loTight: l.loTight && r.hiTight, hiTight: l.hiTight && r.loTight}
	case "*":
		v := ev{aff: affMul(l.aff, r.aff), tainted: t}
		if r.aff != nil && r.aff.isConst() {
			v.lo, v.hi, v.loTight, v.hiTight = scaleRange(l, r.aff.c)
		} else if l.aff != nil && l.aff.isConst() {
			v.lo, v.hi, v.loTight, v.hiTight = scaleRange(r, l.aff.c)
		}
		return v
	case "/":
		v := evUnknown(t)
		if r.aff != nil && r.aff.isConst() && r.aff.c > 0 {
			c := r.aff.c
			if l.aff != nil && divisible(l.aff, c) {
				v.aff = divExact(l.aff, c)
			}
			if l.lo != nil && l.lo.isConst() && l.hi != nil && l.hi.isConst() {
				v.lo, v.hi = affConst(floorDiv(l.lo.c, c)), affConst(floorDiv(l.hi.c, c))
			} else if geZero(l.lo, a.nonneg) {
				v.lo = affConst(0)
			}
		}
		return v
	case "%":
		v := evUnknown(t)
		if r.aff != nil && r.aff.isConst() && r.aff.c > 0 && geZero(l.lo, a.nonneg) {
			v.lo, v.hi = affConst(0), affConst(r.aff.c-1)
		}
		return v
	case "<<":
		if r.aff != nil && r.aff.isConst() && r.aff.c >= 0 && r.aff.c < 31 {
			k := int64(1) << r.aff.c
			v := ev{aff: affScale(l.aff, k), tainted: t}
			v.lo, v.hi, v.loTight, v.hiTight = scaleRange(l, k)
			return v
		}
		return evUnknown(t)
	case ">>":
		if r.aff != nil && r.aff.isConst() && r.aff.c >= 0 && r.aff.c < 31 {
			v := evUnknown(t)
			if geZero(l.lo, a.nonneg) {
				v.lo = affConst(0)
			}
			return v
		}
		return evUnknown(t)
	default: // comparisons, &&, ||, &, |, ^
		return evUnknown(t)
	}
}

func scaleRange(v ev, k int64) (lo, hi *affine, loT, hiT bool) {
	if k >= 0 {
		return affScale(v.lo, k), affScale(v.hi, k), v.loTight, v.hiTight
	}
	return affScale(v.hi, k), affScale(v.lo, k), v.hiTight, v.loTight
}

func divisible(a *affine, c int64) bool {
	if a.c%c != 0 {
		return false
	}
	for _, tc := range a.terms {
		if tc.k%c != 0 {
			return false
		}
	}
	return true
}

func divExact(a *affine, c int64) *affine {
	r := affConst(a.c / c)
	for _, tc := range a.terms {
		r.addTerm(tc.t, tc.k/c)
	}
	return r
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func (a *analyzer) evalTernary(x *minicuda.Ternary) ev {
	cond := a.eval(x.Cond)
	base := a.env
	savedTx := a.tx

	a.env = base.clone()
	a.applyRefinement(x.Cond, true)
	a.enterBranch(cond.tainted)
	tv := a.eval(x.Then)
	a.leaveBranch(cond.tainted)
	thenEnv := a.env
	a.tx = savedTx

	a.env = base.clone()
	a.applyRefinement(x.Cond, false)
	a.enterBranch(cond.tainted)
	fv := a.eval(x.Else)
	a.leaveBranch(cond.tainted)
	a.tx = savedTx

	a.env = mergeEnv(thenEnv, a.env, cond.tainted, a.nextVer)

	out := evUnknown(cond.tainted || tv.tainted || fv.tainted)
	if tv.aff != nil && fv.aff != nil && affEqual(tv.aff, fv.aff) {
		out.aff = tv.aff
	}
	return out
}

func (a *analyzer) evalAssign(x *minicuda.Assign) ev {
	rv := a.eval(x.R)
	if x.Op != "=" {
		// Compound assignment reads the LHS first.
		lv := a.eval(x.L)
		op := strings.TrimSuffix(x.Op, "=")
		nv := evUnknown(lv.tainted || rv.tainted)
		switch op {
		case "+":
			nv = ev{aff: affAdd(lv.aff, rv.aff), tainted: lv.tainted || rv.tainted,
				lo: affAdd(lv.lo, rv.lo), hi: affAdd(lv.hi, rv.hi),
				loTight: lv.loTight && rv.loTight, hiTight: lv.hiTight && rv.hiTight}
		case "-":
			nv = ev{aff: affSub(lv.aff, rv.aff), tainted: lv.tainted || rv.tainted,
				lo: affSub(lv.lo, rv.hi), hi: affSub(lv.hi, rv.lo),
				loTight: lv.loTight && rv.hiTight, hiTight: lv.hiTight && rv.loTight}
		case "*":
			nv.aff = affMul(lv.aff, rv.aff)
		}
		a.assignTo(x.L, nv, false)
		return nv
	}
	a.assignTo(x.L, rv, false)
	return rv
}

// assignTo writes an abstract value into an lvalue. alreadyRead marks
// postfix ops whose read was performed by the caller.
func (a *analyzer) assignTo(lhs minicuda.Expr, v ev, alreadyRead bool) {
	switch l := lhs.(type) {
	case *minicuda.VarRef:
		vi := a.env[l.Sym]
		if vi == nil {
			vi = &varInfo{}
			a.env[l.Sym] = vi
		}
		vi.aff, vi.lo, vi.hi = v.aff, v.lo, v.hi
		vi.loT, vi.hiT = v.loTight, v.hiTight
		vi.tainted = v.tainted || a.divDepth > 0
		vi.knownNneg = geZero(v.lo, a.nonneg)
		vi.ver = a.nextVer()
	case *minicuda.Index:
		a.evalIndex(l, true, false)
	case *minicuda.Unary:
		if l.Op == "*" {
			if vr, ok := l.X.(*minicuda.VarRef); ok && vr.Sym != nil && vr.Sym.Type != nil && vr.Sym.Type.IsPtr() {
				a.recordPtrAccess(vr, evConst(0), true, false, l.Tok())
				return
			}
		}
		a.eval(l.X)
	default:
		if lhs != nil {
			a.eval(lhs)
		}
	}
}

func (a *analyzer) evalCall(x *minicuda.Call) ev {
	if isBarrierBuiltin(x.Builtin) {
		for _, arg := range x.Args {
			a.eval(arg)
		}
		a.barrierAt(x.Tok())
		return evUnknown(false)
	}
	if isAtomicBuiltin(x.Builtin) {
		// First argument is &target; an atomic is a read-modify-write
		// that never races with other atomics.
		if len(x.Args) > 0 {
			if u, ok := x.Args[0].(*minicuda.Unary); ok && u.Op == "&" {
				if idx, ok := u.X.(*minicuda.Index); ok {
					a.evalIndex(idx, true, true)
				} else {
					a.eval(u.X)
				}
			} else {
				a.eval(x.Args[0])
			}
		}
		for _, arg := range x.Args[1:] {
			a.eval(arg)
		}
		return evUnknown(true) // returned old value is schedule-dependent
	}
	switch x.Builtin {
	case "get_local_id", "get_global_id":
		t := true
		if len(x.Args) == 1 {
			if c, ok := x.Args[0].(*minicuda.IntLit); ok && c.Val >= 0 && c.Val <= 2 {
				d := tdim(c.Val + 1)
				aff := affTerm(term{td: d}, 1)
				if x.Builtin == "get_global_id" {
					off := fmt.Sprintf("__group_off.%d", c.Val)
					a.nonnegT[off] = true
					a.attained[off] = true // group 0 exists
					aff = affAdd(aff, affTerm(term{u: off}, 1))
				}
				return ev{aff: aff, tainted: t, lo: affConst(0), loTight: x.Builtin == "get_local_id"}
			}
		}
		return evUnknown(t)
	case "get_group_id", "get_local_size", "get_num_groups", "get_global_size":
		for _, arg := range x.Args {
			a.eval(arg)
		}
		return ev{lo: affConst(0)}
	}
	tainted := false
	argEvs := make([]ev, len(x.Args))
	for i, arg := range x.Args {
		argEvs[i] = a.eval(arg)
		tainted = argEvs[i].tainted || tainted
	}
	if x.Fn != nil {
		if s := a.sums[x.Fn]; s != nil {
			if a.interp && s.precise {
				return a.applyCall(x, s, argEvs)
			}
			// Opaque fallback: cycle members (or intraprocedural mode)
			// keep the flags-only treatment.
			if s.usesBarrier {
				a.callBarrier(x.Tok(), x.Name, barrierInfo{})
			}
			tainted = tainted || s.usesTIdx
		}
		return evUnknown(tainted)
	}
	switch x.Builtin {
	case "abs":
		return ev{lo: affConst(0), tainted: tainted}
	case "min", "max":
		return evUnknown(tainted)
	}
	return evUnknown(tainted)
}

// barrierAt handles a __syncthreads (or a call into a function that
// performs one): it closes the current barrier interval and reports
// divergence hazards.
func (a *analyzer) barrierAt(tok minicuda.Token) {
	if a.record {
		if a.trackSummary {
			a.barrierLog = append(a.barrierLog, barrierInfo{
				div:  a.divDepth > 0,
				exit: a.exitWarn && a.divDepth == 0,
			})
		}
		if a.divDepth > 0 && !a.barrierDivSeen[site(tok, "")] {
			a.barrierDivSeen[site(tok, "")] = true
			a.diag(RuleBarrierDivergence, SevWarn, tok,
				"__syncthreads executes under thread-dependent control flow; threads that skip it deadlock or diverge the barrier",
				"hoist the barrier out of the conditional so every thread of the block reaches it")
		} else if a.exitWarn && a.divDepth == 0 && !a.barrierDivSeen[site(tok, "")] {
			a.barrierDivSeen[site(tok, "")] = true
			a.diag(RuleBarrierExit, SevWarn, tok,
				"__syncthreads is reachable after a thread-dependent early return; exited threads never arrive at the barrier",
				"replace the early return with a guard around the work so all threads still reach __syncthreads")
		}
	}
	a.interval++
}

// ---- Index expressions and bounds ------------------------------------------

// evalIndex handles (possibly nested) subscripting: it flattens the
// index chain, records the access for the race/perf passes, and checks
// bounds against declared extents.
func (a *analyzer) evalIndex(x *minicuda.Index, write, atomic bool) ev {
	// Collect the chain outermost→innermost, then reverse: idxs[0]
	// indexes the first (outermost) dimension.
	var chain []minicuda.Expr
	base := minicuda.Expr(x)
	for {
		ix, ok := base.(*minicuda.Index)
		if !ok {
			break
		}
		chain = append(chain, ix.Idx)
		base = ix.Base
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	vr, ok := base.(*minicuda.VarRef)
	if !ok || vr.Sym == nil || vr.Sym.Type == nil {
		bt := a.eval(base).tainted
		for _, idx := range chain {
			bt = a.eval(idx).tainted || bt
		}
		return evUnknown(bt)
	}
	bt := vr.Sym.Type

	if bt.IsPtr() {
		iv := a.eval(chain[0])
		for _, idx := range chain[1:] {
			a.eval(idx)
		}
		a.recordPtrAccess(vr, iv, write, atomic, x.Tok())
		return evUnknown(iv.tainted)
	}
	if bt.Kind != minicuda.KArray {
		t := a.eval(base).tainted
		for _, idx := range chain {
			t = a.eval(idx).tainted || t
		}
		return evUnknown(t)
	}

	// Array: flatten against the declared dimensions.
	var dims []int
	for t := bt; t.Kind == minicuda.KArray; t = t.Elem {
		dims = append(dims, t.Len)
	}
	scalar := bt.ElemBase()
	n := len(chain)
	if n > len(dims) {
		n = len(dims)
	}
	flat := affConst(0)
	flatLo, flatHi := affConst(0), affConst(0)
	flatLoT, flatHiT := true, true
	tainted := false
	var dimEvs []ev
	for k := 0; k < n; k++ {
		iv := a.eval(chain[k])
		dimEvs = append(dimEvs, iv)
		tainted = tainted || iv.tainted
		stride := int64(1)
		for _, d := range dims[k+1:] {
			stride *= int64(d)
		}
		flat = affAdd(flat, affScale(iv.aff, stride))
		flatLo = affAdd(flatLo, affScale(iv.lo, stride))
		flatHi = affAdd(flatHi, affScale(iv.hi, stride))
		flatLoT = flatLoT && iv.loTight
		flatHiT = flatHiT && iv.hiTight
	}
	for _, idx := range chain[n:] {
		tainted = a.eval(idx).tainted || tainted
	}

	if len(chain) >= len(dims) {
		fe := ev{aff: flat, lo: flatLo, hi: flatHi, loTight: flatLoT, hiTight: flatHiT, tainted: tainted}
		a.recordArrayAccess(vr, dims, dimEvs, fe, scalar, write, atomic, x.Tok())
	}
	return evUnknown(tainted)
}

// recordPtrAccess records an access through a pointer parameter (global
// memory). Extent is unknown; only the negative side is checkable.
func (a *analyzer) recordPtrAccess(vr *minicuda.VarRef, iv ev, write, atomic bool, tok minicuda.Token) {
	if a.record {
		a.accesses = append(a.accesses, access{
			sym: vr.Sym, space: minicuda.SpaceGlobal, write: write, atomic: atomic,
			interval: a.interval, idx: iv.aff, lo: a.uniformBound(iv.lo), hi: a.uniformBound(iv.hi),
			divRead: a.divDepth > 0, guarded: a.anyDepth > 0, pins: a.pinSig(),
			pos: tok, expr: vr.Name + "[" + iv.aff.String() + "]",
		})
	}
	a.checkPtrLower(vr.Name, iv, tok, a.anyDepth == 0, "")
}

// checkPtrLower reports a negative index through a pointer; via names
// the device function the access was replayed from ("" = direct).
func (a *analyzer) checkPtrLower(name string, iv ev, tok minicuda.Token, unconditional bool, via string) {
	if iv.lo != nil && iv.lo.isConst() && iv.lo.c < 0 {
		key := site(tok, name)
		if a.oobSeen[key] {
			return
		}
		a.oobSeen[key] = true
		if iv.loTight && unconditional {
			a.diag(RuleOOB, SevError, tok,
				fmt.Sprintf("%s[%s]%s reaches a negative index (minimum %d); the device traps on the first thread that executes it",
					name, iv.aff, viaSuffix(via), iv.lo.c),
				"guard the access so the index stays in range")
		} else {
			a.diag(RuleOOBMaybe, SevWarn, tok,
				fmt.Sprintf("%s[%s]%s may reach a negative index (minimum %d)", name, iv.aff, viaSuffix(via), iv.lo.c),
				"guard the access so the index stays in range")
		}
	}
}

// viaSuffix renders the call-chain marker for diagnostics on replayed
// accesses.
func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " (via " + via + ")"
}

// recordArrayAccess records an access to a declared array (shared,
// local, or constant) and checks it against the declared extents.
func (a *analyzer) recordArrayAccess(vr *minicuda.VarRef, dims []int, dimEvs []ev, flat ev, scalar *minicuda.Type, write, atomic bool, tok minicuda.Token) {
	space := vr.Sym.Type.Space
	if vr.Sym.Kind == minicuda.SymShared {
		space = minicuda.SpaceShared
	}
	if a.record {
		a.accesses = append(a.accesses, access{
			sym: vr.Sym, space: space, write: write, atomic: atomic,
			interval: a.interval, idx: flat.aff, lo: a.uniformBound(flat.lo), hi: a.uniformBound(flat.hi),
			divRead: a.divDepth > 0, guarded: a.anyDepth > 0, pins: a.pinSig(),
			pos: tok, expr: vr.Name + "[" + flat.aff.String() + "]",
		})
	}
	total := int64(1)
	for _, d := range dims {
		total *= int64(d)
	}
	a.checkArrayBounds(vr, dims, dimEvs, flat, total, scalar, space, tok, a.anyDepth == 0, "")
}

func (a *analyzer) checkArrayBounds(vr *minicuda.VarRef, dims []int, dimEvs []ev, flat ev, total int64, scalar *minicuda.Type, space minicuda.MemSpace, tok minicuda.Token, unconditional bool, via string) {
	if !a.record {
		return
	}
	key := site(tok, vr.Name)
	if a.oobSeen[key] {
		return
	}
	report := func(id string, sev Severity, msg, hint string) {
		a.oobSeen[key] = true
		a.diag(id, sev, tok, msg, hint)
	}

	// Flattened element range against the whole variable.
	loConst := flat.lo != nil && flat.lo.isConst()
	hiConst := flat.hi != nil && flat.hi.isConst()
	arrayDesc := fmt.Sprintf("%s %s (%d elements)%s", space, vr.Name, total, viaSuffix(via))

	if loConst && flat.lo.c < 0 {
		// For shared variables the device traps on negative *arena*
		// offsets; a negative offset into a variable at a positive arena
		// offset lands in the preceding shared variable instead.
		arenaLo := flat.lo.c*int64(scalar.Size()) + int64(vr.Sym.Off)
		traps := space != minicuda.SpaceShared || arenaLo < 0
		if flat.loTight && unconditional && traps {
			report(RuleOOB, SevError,
				fmt.Sprintf("%s[%s] reaches index %d of %s; the device traps", vr.Name, flat.aff, flat.lo.c, arrayDesc),
				"keep the index inside the declared extent")
		} else {
			report(RuleOOBMaybe, SevWarn,
				fmt.Sprintf("%s[%s] may reach index %d of %s", vr.Name, flat.aff, flat.lo.c, arrayDesc),
				"keep the index inside the declared extent")
		}
		return
	}
	if loConst && flat.lo.c >= total {
		a.reportOver(report, vr, flat, total, scalar, space, arrayDesc, true, unconditional)
		return
	}
	if hiConst && flat.hi.c >= total {
		a.reportOver(report, vr, flat, total, scalar, space, arrayDesc, flat.hiTight, unconditional)
		return
	}

	// Per-dimension logical violations that stay inside the flattened
	// variable: these never trap (the arena is flat) but index the wrong
	// row — the classic transposed-tile bug.
	for k, iv := range dimEvs {
		if iv.hi != nil && iv.hi.isConst() && iv.hi.c >= int64(dims[k]) && len(dims) > 1 {
			report(RuleOOBMaybe, SevWarn,
				fmt.Sprintf("dimension %d of %s[%s] can reach %d but is declared [%d]; the flat arena hides this, the access lands in a different row",
					k, vr.Name, flat.aff, iv.hi.c, dims[k]),
				"check the index order against the declaration")
			return
		}
	}
}

func (a *analyzer) reportOver(report func(string, Severity, string, string), vr *minicuda.VarRef, flat ev, total int64, scalar *minicuda.Type, space minicuda.MemSpace, arrayDesc string, tight, unconditional bool) {
	hiVal := flat.hi
	if flat.lo != nil && flat.lo.isConst() && flat.lo.c >= total {
		hiVal = flat.lo
	}
	// Beyond the variable. For shared memory the device only traps past
	// the whole arena (other shared variables may absorb the overflow).
	traps := true
	if space == minicuda.SpaceShared {
		arenaHi := hiVal.c*int64(scalar.Size()) + int64(vr.Sym.Off) + int64(scalar.Size())
		traps = arenaHi > int64(a.fn.SharedUse)
	}
	if tight && unconditional && traps {
		report(RuleOOB, SevError,
			fmt.Sprintf("%s[%s] reaches index %d of %s; the device traps", vr.Name, flat.aff, hiVal.c, arrayDesc),
			"keep the index inside the declared extent")
	} else {
		msg := fmt.Sprintf("%s[%s] may reach index %d of %s", vr.Name, flat.aff, hiVal.c, arrayDesc)
		if !traps {
			msg += "; it lands in an adjacent shared variable instead of trapping"
		}
		report(RuleOOBMaybe, SevWarn, msg, "keep the index inside the declared extent")
	}
}

// uniformBound strips bounds containing thread-dimension terms: race
// disjointness compares bounds across *different* threads, where a
// shared threadIdx term would be unsound.
func (a *analyzer) uniformBound(b *affine) *affine {
	if b == nil || !b.hasThreadTerms() {
		return b
	}
	return nil
}

// tightenHi replaces a variable's upper bound only when the new bound is
// an improvement: a refinement repeating an already-known bound must not
// demote its tightness.
func (a *analyzer) tightenHi(vi *varInfo, h *affine) {
	if h == nil {
		return
	}
	if vi.hi != nil {
		if s, ok := cmpAff(h, vi.hi, a.nonneg); ok && s >= 0 {
			return
		}
	}
	vi.hi, vi.hiT = h, false
}

func (a *analyzer) tightenLo(vi *varInfo, l *affine) {
	if l == nil {
		return
	}
	if vi.lo != nil {
		if s, ok := cmpAff(l, vi.lo, a.nonneg); ok && s <= 0 {
			return
		}
	}
	vi.lo, vi.loT = l, false
}

// pinSig summarizes equality pins on thread dimensions in scope, e.g.
// "x=0" under `if (threadIdx.x == 0)`.
func (a *analyzer) pinSig() string {
	var parts []string
	for d := 0; d < 3; d++ {
		if a.tx[d].pin != nil {
			parts = append(parts, fmt.Sprintf("%s=%s", [3]string{"x", "y", "z"}[d], a.tx[d].pin))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ---- Condition refinement --------------------------------------------------

// applyRefinement narrows variable and thread-index ranges from a branch
// condition. branch selects the then (true) or else (false) side.
func (a *analyzer) applyRefinement(cond minicuda.Expr, branch bool) {
	switch c := cond.(type) {
	case *minicuda.Unary:
		if c.Op == "!" {
			a.applyRefinement(c.X, !branch)
		}
	case *minicuda.Binary:
		switch c.Op {
		case "&&":
			if branch {
				a.applyRefinement(c.L, true)
				a.applyRefinement(c.R, true)
			}
		case "||":
			if !branch {
				a.applyRefinement(c.L, false)
				a.applyRefinement(c.R, false)
			}
		case "<", "<=", ">", ">=", "==", "!=":
			a.refineCmp(c, branch)
		}
	}
}

func (a *analyzer) refineCmp(c *minicuda.Binary, branch bool) {
	op := c.Op
	if !branch {
		op = negateOp(op)
	}
	// Normalize to L op R with L the refined side; also refine R via the
	// flipped comparison.
	a.refineSide(c.L, op, c.R)
	a.refineSide(c.R, flipOp(op), c.L)
}

func negateOp(op string) string {
	switch op {
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	case "==":
		return "!="
	case "!=":
		return "=="
	}
	return op
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // == and != are symmetric
}

// refineSide narrows lhs (a variable or threadIdx member) against the
// abstract value of rhs.
func (a *analyzer) refineSide(lhs minicuda.Expr, op string, rhs minicuda.Expr) {
	rv := a.snapshotEval(rhs)
	if rv.aff == nil {
		return
	}
	switch l := lhs.(type) {
	case *minicuda.VarRef:
		if l.Sym == nil || l.Sym.Type == nil || !l.Sym.Type.IsInteger() {
			return
		}
		vi := a.env[l.Sym]
		if vi == nil {
			return
		}
		cp := *vi
		vi = &cp
		a.env[l.Sym] = vi
		switch op {
		case "<":
			a.tightenHi(vi, affSub(rv.aff, affConst(1)))
		case "<=":
			a.tightenHi(vi, rv.aff)
		case ">":
			a.tightenLo(vi, affAdd(rv.aff, affConst(1)))
		case ">=":
			a.tightenLo(vi, rv.aff)
		case "==":
			if !rv.tainted {
				vi.aff, vi.lo, vi.hi = rv.aff, rv.aff, rv.aff
				vi.tainted = false
			}
		}
		vi.knownNneg = vi.knownNneg || geZero(vi.lo, a.nonneg)
	case *minicuda.BuiltinVarRef:
		if l.Base != "threadIdx" || rv.tainted {
			return
		}
		r := &a.tx[l.Dim]
		switch op {
		case "<":
			r.hi = affSub(rv.aff, affConst(1))
		case "<=":
			r.hi = rv.aff
		case ">":
			r.lo = affAdd(rv.aff, affConst(1))
		case ">=":
			r.lo = rv.aff
		case "==":
			r.pin = rv.aff
		}
	}
}
