// Package kernelcheck statically analyzes type-checked minicuda kernels
// and reports the classic GPU-course bugs — barrier divergence,
// shared-memory races, out-of-bounds indexing — plus performance
// advisories (uncoalesced global access, shared bank conflicts) and
// hygiene findings (unused variables, dead stores, unreachable code),
// before any simulator cycle is spent. Diagnostics carry a stable rule
// ID, a severity, and a fix hint, and ride the job pipeline back to the
// student alongside compile errors.
package kernelcheck

import (
	"fmt"
	"sort"
	"strings"

	"webgpu/internal/minicuda"
)

// Severity ranks a diagnostic. Errors are provable bugs (the program
// traps or is nondeterministic on some legal schedule); warnings are
// possible bugs the analysis cannot prove either way; info covers
// advisories and hygiene.
type Severity string

// Severities, from most to least severe.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
	SevInfo  Severity = "info"
)

// rank orders severities for comparisons; higher is more severe.
func (s Severity) rank() int {
	switch s {
	case SevError:
		return 3
	case SevWarn:
		return 2
	case SevInfo:
		return 1
	}
	return 0
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	ID       string   `json:"id"`       // stable rule ID, e.g. "KC-RACE"
	Severity Severity `json:"severity"` // error | warn | info
	Kernel   string   `json:"kernel,omitempty"`
	Pos      string   `json:"pos"` // "line:col" in the submitted source
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s[%s]", d.Pos, d.Severity, d.ID)
	if d.Kernel != "" {
		fmt.Fprintf(&sb, " %s", d.Kernel)
	}
	fmt.Fprintf(&sb, ": %s", d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&sb, " (hint: %s)", d.Hint)
	}
	return sb.String()
}

// Rule describes one analyzer rule, for metric registration and docs.
type Rule struct {
	ID       string
	Severity Severity // worst severity the rule can emit
	Summary  string
}

// RulesetVersion names the analyzer's rule + summary semantics. It is
// mixed into every incremental cache key and into the progcache
// diagnostics artifact name, so any change to rules, message text, or
// summary precision must bump it to invalidate cached results.
const RulesetVersion = "kc2"

// Rule IDs.
const (
	RuleBarrierDivergence = "KC-BARRIER-DIV"
	RuleBarrierExit       = "KC-BARRIER-EXIT"
	RuleBarrierCallDiv    = "KC-BARRIER-CALL-DIV"
	RuleRace              = "KC-RACE"
	RuleRaceCall          = "KC-RACE-CALL"
	RuleRaceMaybe         = "KC-RACE-MAYBE"
	RuleOOB               = "KC-OOB"
	RuleOOBMaybe          = "KC-OOB-MAYBE"
	RuleCoalesce          = "KC-COALESCE"
	RuleBankConflict      = "KC-BANK"
	RuleUnused            = "KC-UNUSED"
	RuleDeadStore         = "KC-DEAD-STORE"
	RuleUnreachable       = "KC-UNREACHABLE"
	RuleInternal          = "KC-INTERNAL"
)

var rules = []Rule{
	{RuleBarrierDivergence, SevWarn, "__syncthreads under thread-dependent control flow"},
	{RuleBarrierExit, SevWarn, "__syncthreads reachable after a thread-dependent early return"},
	{RuleBarrierCallDiv, SevWarn, "device-function call reaches __syncthreads under thread-dependent control flow"},
	{RuleRace, SevError, "provable shared-memory race within one barrier interval"},
	{RuleRaceCall, SevError, "provable shared-memory race through a device-function call"},
	{RuleRaceMaybe, SevWarn, "possible shared-memory race within one barrier interval"},
	{RuleOOB, SevError, "provable out-of-bounds access (traps on the device)"},
	{RuleOOBMaybe, SevWarn, "possible or logical out-of-bounds access"},
	{RuleCoalesce, SevInfo, "strided global access defeats coalescing"},
	{RuleBankConflict, SevInfo, "strided shared access causes bank conflicts"},
	{RuleUnused, SevInfo, "variable declared but never used"},
	{RuleDeadStore, SevInfo, "variable assigned but never read"},
	{RuleUnreachable, SevInfo, "unreachable code"},
	{RuleInternal, SevInfo, "analyzer internal error (analysis incomplete)"},
}

// Rules lists every rule the analyzer can fire, in stable order. Metric
// exporters enumerate this at registration so per-rule series exist from
// process start rather than appearing lazily on first fire.
func Rules() []Rule {
	out := make([]Rule, len(rules))
	copy(out, rules)
	return out
}

// MetricName maps a rule ID to its fire-count metric name.
func MetricName(ruleID string) string {
	return "kernelcheck_fire_" + strings.ToLower(strings.ReplaceAll(ruleID, "-", "_"))
}

// MaxSeverity returns the most severe level present, or "" when the
// slice is empty.
func MaxSeverity(diags []Diagnostic) Severity {
	var best Severity
	for _, d := range diags {
		if d.Severity.rank() > best.rank() {
			best = d.Severity
		}
	}
	return best
}

// ErrorCount counts error-severity diagnostics.
func ErrorCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// Analyze runs every pass over each kernel of a compiled program and
// returns the findings sorted by source position. It never fails: a
// panic inside a pass (an analyzer bug, not a student bug) degrades to a
// KC-INTERNAL info diagnostic so the job pipeline keeps running. Calls
// into device functions are analyzed interprocedurally through effect
// summaries (see summary.go).
func Analyze(prog *minicuda.Program) []Diagnostic {
	return analyzeProgram(prog, nil).Diagnostics
}

// AnalyzeIntra runs the passes with calls treated opaquely (the
// pre-summary behavior): a call only closes a barrier interval and
// taints its result. Kept for the CLI's -interprocedural=false mode and
// for triaging whether a finding depends on summary substitution.
func AnalyzeIntra(prog *minicuda.Program) []Diagnostic {
	var diags []Diagnostic
	sums := summarizeFlags(prog)
	for _, fn := range prog.Funcs {
		diags = append(diags, analyzeFunc(prog, fn, sums, false)...)
	}
	sortDiags(diags)
	return diags
}

// analyzeProgram is the shared full/incremental pipeline. With a nil
// engine every function is analyzed from scratch; with an engine,
// functions whose cache key matches reuse both their summary and their
// diagnostics. Both paths run the exact same per-function passes in the
// same order, which is what makes incremental output byte-identical to
// a full run.
func analyzeProgram(prog *minicuda.Program, inc *Incremental) Result {
	res := Result{Total: len(prog.Funcs)}
	sums := summarizeFlags(prog)
	calls := calleeMap(prog)

	var keys map[*minicuda.Function]string
	var cacheable map[*minicuda.Function]bool
	if inc != nil {
		keys, cacheable = computeKeys(prog, calls)
	}
	hit := func(fn *minicuda.Function) *cachedFn {
		if inc == nil || !cacheable[fn] {
			return nil
		}
		if e := inc.funcs[fn.Name]; e != nil && e.key == keys[fn] {
			return e
		}
		return nil
	}

	// Summaries, callee-before-caller: cache hits adopt the cached
	// summary verbatim (its token positions are valid — the structural
	// hash covers positions), misses recompute.
	for _, fn := range topoOrder(prog, calls) {
		if e := hit(fn); e != nil {
			*sums[fn] = *e.sum
			continue
		}
		if !fn.IsKernel {
			buildEffects(prog, fn, sums)
		}
	}

	// Per-function diagnostics in declaration order, spliced from the
	// cache where possible.
	var diags []Diagnostic
	for _, fn := range prog.Funcs {
		if e := hit(fn); e != nil {
			diags = append(diags, e.diags...)
			e.gen = inc.gen
			res.Reused++
			continue
		}
		d := analyzeFunc(prog, fn, sums, true)
		diags = append(diags, d...)
		res.Analyzed++
		if inc != nil && cacheable[fn] {
			sum := *sums[fn]
			inc.funcs[fn.Name] = &cachedFn{
				key:   keys[fn],
				sum:   &sum,
				diags: append([]Diagnostic(nil), d...),
				gen:   inc.gen,
			}
		}
	}
	sortDiags(diags)
	res.Diagnostics = diags
	return res
}

// AnalyzeSource compiles source in the given dialect and analyzes it.
// Compile errors are returned as-is; the analyzer only sees programs
// that passed the type checker.
func AnalyzeSource(src string, dialect minicuda.Dialect) ([]Diagnostic, error) {
	prog, err := minicuda.Compile(src, dialect)
	if err != nil {
		return nil, err
	}
	return Analyze(prog), nil
}

func analyzeFunc(prog *minicuda.Program, fn *minicuda.Function, sums map[*minicuda.Function]*fnSummary, interp bool) (diags []Diagnostic) {
	defer func() {
		if r := recover(); r != nil {
			diags = append(diags, Diagnostic{
				ID:       RuleInternal,
				Severity: SevInfo,
				Kernel:   fn.Name,
				Pos:      fn.Tok().Pos(),
				Message:  fmt.Sprintf("analysis of %q aborted: %v", fn.Name, r),
			})
		}
	}()
	if fn.IsKernel {
		a := newAnalyzer(prog, fn, sums)
		a.interp = interp
		a.run()
		diags = append(diags, a.diags...)
	}
	diags = append(diags, hygiene(fn)...)
	return diags
}

// sortDiags orders diagnostics by position (line, then column), then by
// severity (most severe first), then rule ID, and drops exact
// duplicates, giving the corpus a stable golden output.
func sortDiags(diags []Diagnostic) {
	lineCol := func(pos string) (int, int) {
		var l, c int
		fmt.Sscanf(pos, "%d:%d", &l, &c)
		return l, c
	}
	sort.SliceStable(diags, func(i, j int) bool {
		li, ci := lineCol(diags[i].Pos)
		lj, cj := lineCol(diags[j].Pos)
		if li != lj {
			return li < lj
		}
		if ci != cj {
			return ci < cj
		}
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity.rank() > diags[j].Severity.rank()
		}
		return diags[i].ID < diags[j].ID
	})
}
