package kernelcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
)

// The differential guard: every corpus kernel the analyzer marks with a
// *provable* (error-severity) race or out-of-bounds access must
// actually misbehave on the simulator — trap, or produce
// schedule-dependent output across two scheduler seeds. This keeps the
// "provable" tier honest: a diagnostic the simulator cannot reproduce
// is either a false positive or belongs in the warn tier.
//
// A //GUARD: directive in the kernel source opts it into execution:
//
//	//GUARD: expect=trap|nondet kernel=<name> grid=<G> block=<B> n=<N>
//
// Guard kernels use the (float *in, float *out, int n) skeleton. Only
// barrier-free kernels may carry expect=nondet: they run on the serial
// per-block path where SchedSeed permutes thread order without creating
// Go-level data races (a barrier kernel runs one goroutine per thread,
// and a racy one would trip `go test -race` itself).

var guardRe = regexp.MustCompile(`//GUARD:\s*expect=(trap|nondet)\s+kernel=(\w+)\s+grid=(\d+)\s+block=(\d+)\s+n=(\d+)`)

// guardExempt lists corpus kernels with error-severity diagnostics that
// the guard cannot execute, with the reason.
var guardExempt = map[string]string{
	// Every thread writes s[0] and immediately reads it back; on the
	// serial path the read always sees the thread's own write, so the
	// output is order-independent even though the race is real.
	"race_ww_shared": "serial read-back of own write is order-independent",
	// Same shape: the plain store, atomic add, and read happen inside
	// one thread's serial slice, and addition commutes across threads.
	"race_atomic_mixed": "atomic accumulation is order-independent",
	// Documented false positive: safe at blockDim.x == 32, and the
	// corpus golden records exactly that.
	"known_limit_split_fill": "known false positive (launch geometry unknown)",
}

type guardSpec struct {
	expect string
	kernel string
	grid   int
	block  int
	n      int
}

func parseGuard(src string) *guardSpec {
	m := guardRe.FindStringSubmatch(src)
	if m == nil {
		return nil
	}
	g, _ := strconv.Atoi(m[3])
	b, _ := strconv.Atoi(m[4])
	n, _ := strconv.Atoi(m[5])
	return &guardSpec{expect: m[1], kernel: m[2], grid: g, block: b, n: n}
}

func runGuard(t *testing.T, src string, dialect minicuda.Dialect, spec *guardSpec, seed uint64) ([]float32, error) {
	t.Helper()
	p, err := minicuda.Compile(src, dialect)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d := gpusim.NewDefaultDevice()
	defer d.Close()
	in := make([]float32, spec.n)
	for i := range in {
		in[i] = float32(i + 1) // distinct and nonzero, so stale reads show
	}
	ip, err := d.MallocFloat32(spec.n, in)
	if err != nil {
		t.Fatal(err)
	}
	op, err := d.Malloc(spec.n * 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Launch(d, spec.kernel,
		minicuda.LaunchOpts{Grid: gpusim.D1(spec.grid), Block: gpusim.D1(spec.block), SchedSeed: seed},
		minicuda.FloatPtr(ip), minicuda.FloatPtr(op), minicuda.Int(spec.n))
	if err != nil {
		return nil, err
	}
	out, err := d.ReadFloat32(op, spec.n)
	if err != nil {
		t.Fatal(err)
	}
	return out, nil
}

func TestDifferentialGuard(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cu"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		f := f
		name := strings.TrimSuffix(filepath.Base(f), ".cu")
		srcB, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcB)
		spec := parseGuard(src)

		// Error-severity race/OOB diagnostics demand a guard run or an
		// explicit exemption.
		golden, err := os.ReadFile(strings.TrimSuffix(f, ".cu") + ".diag")
		if err != nil {
			t.Fatalf("%s: missing golden: %v", name, err)
		}
		provable := strings.Contains(string(golden), "error[KC-RACE]") ||
			strings.Contains(string(golden), "error[KC-RACE-CALL]") ||
			strings.Contains(string(golden), "error[KC-OOB]")
		if provable && spec == nil {
			if _, ok := guardExempt[name]; !ok {
				t.Errorf("%s: provable diagnostic but no //GUARD: directive and no exemption", name)
			}
		}
		if spec == nil {
			continue
		}

		dialect := minicuda.DialectCUDA
		if strings.Contains(src, "__kernel") {
			dialect = minicuda.DialectOpenCL
		}
		t.Run(name, func(t *testing.T) {
			switch spec.expect {
			case "trap":
				for _, seed := range []uint64{0, 0x9e3779b9} {
					if _, err := runGuard(t, src, dialect, spec, seed); err == nil {
						t.Errorf("seed %#x: expected a trap, launch succeeded", seed)
					}
				}
			case "nondet":
				a, err := runGuard(t, src, dialect, spec, 0)
				if err != nil {
					t.Fatalf("seed 0: %v", err)
				}
				b, err := runGuard(t, src, dialect, spec, 0x9e3779b9)
				if err != nil {
					t.Fatalf("seed 0x9e3779b9: %v", err)
				}
				if fmt.Sprint(a) == fmt.Sprint(b) {
					t.Errorf("output identical across scheduler seeds; race not observable:\n%v", a)
				}
			}
		})
	}
}
