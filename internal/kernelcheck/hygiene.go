package kernelcheck

import (
	"fmt"

	"webgpu/internal/minicuda"
)

// hygiene runs the purely syntactic pass over one function: unused
// variables, dead stores (assigned but never read), and unreachable
// statements after a return/break/continue.
func hygiene(fn *minicuda.Function) []Diagnostic {
	var diags []Diagnostic
	emit := func(id string, tok minicuda.Token, msg, hint string) {
		diags = append(diags, Diagnostic{
			ID: id, Severity: SevInfo, Kernel: fn.Name, Pos: tok.Pos(), Message: msg, Hint: hint,
		})
	}

	type useCount struct {
		decl   minicuda.Token
		name   string
		reads  int
		writes int
		isArg  bool
	}
	counts := make(map[*minicuda.Symbol]*useCount)
	var declOrder []*minicuda.Symbol
	note := func(sym *minicuda.Symbol, tok minicuda.Token, name string, isArg bool) *useCount {
		if sym == nil {
			return nil
		}
		uc := counts[sym]
		if uc == nil {
			uc = &useCount{decl: tok, name: name, isArg: isArg}
			counts[sym] = uc
			declOrder = append(declOrder, sym)
		}
		return uc
	}
	for _, p := range fn.Params {
		note(p.Sym, p.Tok(), p.Name, true)
	}
	walkNodes(fn.Body, func(n minicuda.Node) {
		switch x := n.(type) {
		case *minicuda.DeclStmt:
			for _, d := range x.Decls {
				note(d.Sym, d.Tok(), d.Name, false)
			}
		}
	})

	// Count reads and writes. An assignment's LHS VarRef is a write (a
	// compound assignment also reads); every other VarRef occurrence,
	// including an Index base, is a read.
	writeTargets := make(map[minicuda.Node]bool)
	compound := make(map[minicuda.Node]bool)
	walkNodes(fn.Body, func(n minicuda.Node) {
		switch x := n.(type) {
		case *minicuda.Assign:
			if vr, ok := x.L.(*minicuda.VarRef); ok {
				writeTargets[vr] = true
				if x.Op != "=" {
					compound[vr] = true
				}
			}
		case *minicuda.Unary:
			if x.Op == "++" || x.Op == "--" {
				if vr, ok := x.X.(*minicuda.VarRef); ok {
					writeTargets[vr] = true
					compound[vr] = true
				}
			}
		case *minicuda.Postfix:
			if vr, ok := x.X.(*minicuda.VarRef); ok {
				writeTargets[vr] = true
				compound[vr] = true
			}
		}
	})
	walkNodes(fn.Body, func(n minicuda.Node) {
		vr, ok := n.(*minicuda.VarRef)
		if !ok {
			return
		}
		uc := counts[vr.Sym]
		if uc == nil {
			uc = note(vr.Sym, vr.Tok(), vr.Name, false)
			if uc == nil {
				return
			}
		}
		if writeTargets[vr] {
			uc.writes++
			if compound[vr] {
				uc.reads++
			}
		} else {
			uc.reads++
		}
	})

	for _, sym := range declOrder {
		uc := counts[sym]
		if uc.isArg {
			continue // skeleton signatures are fixed by the lab harness
		}
		switch {
		case uc.reads == 0 && uc.writes == 0:
			emit(RuleUnused, uc.decl,
				fmt.Sprintf("variable %q is declared but never used", uc.name),
				"remove the declaration")
		case uc.reads == 0 && uc.writes > 0:
			emit(RuleDeadStore, uc.decl,
				fmt.Sprintf("variable %q is assigned but its value is never read", uc.name),
				"remove the variable or use the value it holds")
		}
	}

	// Unreachable statements: anything after a statement that definitely
	// transfers control out of the block.
	var scan func(s minicuda.Stmt)
	terminates := func(s minicuda.Stmt) bool {
		var t func(s minicuda.Stmt) bool
		t = func(s minicuda.Stmt) bool {
			switch x := s.(type) {
			case *minicuda.ReturnStmt, *minicuda.BreakStmt, *minicuda.ContinueStmt:
				return true
			case *minicuda.IfStmt:
				return x.Else != nil && t(x.Then) && t(x.Else)
			case *minicuda.Block:
				for _, sub := range x.Stmts {
					if t(sub) {
						return true
					}
				}
			}
			return false
		}
		return t(s)
	}
	scan = func(s minicuda.Stmt) {
		switch x := s.(type) {
		case *minicuda.Block:
			dead := false
			for _, sub := range x.Stmts {
				if dead {
					if _, empty := sub.(*minicuda.EmptyStmt); !empty {
						emit(RuleUnreachable, sub.Tok(),
							"statement is unreachable", "remove it, or fix the control flow above")
						return // one report per block is enough
					}
					continue
				}
				scan(sub)
				dead = terminates(sub)
			}
		case *minicuda.IfStmt:
			scan(x.Then)
			scan(x.Else)
		case *minicuda.ForStmt:
			scan(x.Body)
		case *minicuda.WhileStmt:
			scan(x.Body)
		}
	}
	scan(fn.Body)
	return diags
}
