package kernelcheck_test

import (
	"testing"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
)

// benchKernels are the largest lab reference kernels — the worst case
// for the analyzer, since every pass walks every statement.
func benchKernels(b *testing.B) map[string]*minicuda.Program {
	b.Helper()
	progs := map[string]*minicuda.Program{}
	for _, id := range []string{"vector-add", "tiled-matmul", "reduction-scan", "convolution-2d"} {
		l := labs.ByID(id)
		if l == nil {
			b.Fatalf("no lab %q", id)
		}
		prog, err := minicuda.Compile(l.Reference, l.Dialect)
		if err != nil {
			b.Fatalf("compile %s: %v", id, err)
		}
		progs[id] = prog
	}
	return progs
}

// BenchmarkAnalyze times all five passes over pre-compiled programs —
// the marginal cost the analyzer adds to a cold compile.
func BenchmarkAnalyze(b *testing.B) {
	progs := benchKernels(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prog := range progs {
			kernelcheck.Analyze(prog)
		}
	}
}

// BenchmarkCompile times the compile stage the analyzer rides on, for
// the same kernels, so the two numbers are directly comparable.
func BenchmarkCompile(b *testing.B) {
	var srcs []struct {
		src     string
		dialect minicuda.Dialect
	}
	for _, id := range []string{"vector-add", "tiled-matmul", "reduction-scan", "convolution-2d"} {
		l := labs.ByID(id)
		srcs = append(srcs, struct {
			src     string
			dialect minicuda.Dialect
		}{l.Reference, l.Dialect})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			if _, err := minicuda.Compile(s.src, s.dialect); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestAnalyzeLatencyBudget keeps the analyzer's raw cost visible and
// bounded. The fixpoint pass makes a full analysis a small constant
// multiple of a bare compile for loop-heavy kernels; the <10% cold-job
// budget is met at the pipeline level instead, where the worker overlaps
// the analysis with dataset execution under the warn policy (see
// TestAnalysisOffCriticalPath in internal/worker). The bound here is a
// regression tripwire: a trip means the analyzer got pathologically
// slower, not that the machine was busy.
func TestAnalyzeLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	l := labs.ByID("tiled-matmul")
	const rounds = 51
	compileMed := median(rounds, func() {
		if _, err := minicuda.Compile(l.Reference, l.Dialect); err != nil {
			t.Fatal(err)
		}
	})
	prog, err := minicuda.Compile(l.Reference, l.Dialect)
	if err != nil {
		t.Fatal(err)
	}
	analyzeMed := median(rounds, func() { kernelcheck.Analyze(prog) })
	t.Logf("compile median %v, analyze median %v (%.1f%%)",
		compileMed, analyzeMed, 100*float64(analyzeMed)/float64(compileMed))
	if analyzeMed > 10*compileMed {
		t.Errorf("analyzer median %v exceeds 10x compile median %v", analyzeMed, compileMed)
	}
}

func median(rounds int, fn func()) time.Duration {
	ds := make([]time.Duration, rounds)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}
