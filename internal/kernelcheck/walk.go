//kernelcheck:hotpath
package kernelcheck

import (
	"sort"
	"strings"

	"webgpu/internal/minicuda"
)

func scanFn(fn *minicuda.Function, sums map[*minicuda.Function]*fnSummary) (barrier, tidx bool) {
	walkNodes(fn.Body, func(n minicuda.Node) {
		switch x := n.(type) {
		case *minicuda.Call:
			if isBarrierBuiltin(x.Builtin) {
				barrier = true
			}
			if x.Builtin == "get_local_id" || x.Builtin == "get_global_id" {
				tidx = true
			}
			if x.Fn != nil {
				if s := sums[x.Fn]; s != nil {
					barrier = barrier || s.usesBarrier
					tidx = tidx || s.usesTIdx
				}
			}
		case *minicuda.BuiltinVarRef:
			if x.Base == "threadIdx" {
				tidx = true
			}
		}
	})
	return barrier, tidx
}

func isBarrierBuiltin(name string) bool {
	return name == "__syncthreads" || name == "barrier"
}

func isAtomicBuiltin(name string) bool {
	switch name {
	case "atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicExch", "atomicCAS":
		return true
	}
	return false
}

// ev is the abstract value of an expression: its affine form (nil when
// not representable), provable bounds (nil when unbounded), whether the
// bounds are tight (attained by some thread/iteration), and whether the
// value is thread-dependent.
type ev struct {
	aff     *affine
	lo, hi  *affine
	loTight bool
	hiTight bool
	tainted bool
}

func evConst(c int64) ev {
	a := affConst(c)
	return ev{aff: a, lo: a, hi: a, loTight: true, hiTight: true}
}

func evUnknown(tainted bool) ev { return ev{tainted: tainted} }

// varInfo is the abstract state of one variable.
type varInfo struct {
	aff       *affine // nil = unknown (reads produce an opaque versioned term)
	lo, hi    *affine // range refinement, nil = unbounded
	loT, hiT  bool    // bounds tight (attained)
	tainted   bool
	ver       int
	knownNneg bool // lo ≥ 0 established (propagates into opaque terms)
}

type env map[*minicuda.Symbol]*varInfo

func (e env) clone() env {
	c := make(env, len(e))
	for s, v := range e {
		cp := *v
		c[s] = &cp
	}
	return c
}

// siteKey identifies a source position (plus an optional symbol name)
// without rendering it to a string — dedup maps in hot paths key on it.
type siteKey struct {
	line, col int
	name      string
}

func site(tok minicuda.Token, name string) siteKey {
	return siteKey{line: tok.Line, col: tok.Col, name: name}
}

// access is one recorded memory access.
type access struct {
	sym      *minicuda.Symbol
	space    minicuda.MemSpace
	write    bool
	atomic   bool
	interval int
	idx      *affine // flattened element index (scalar elements)
	lo, hi   *affine
	divRead  bool   // under thread-dependent control flow
	guarded  bool   // under any control flow
	pins     string // canonical pin signature from == guards
	pos      minicuda.Token
	expr     string // rendered index for messages
	via      string // device function the access was replayed from ("" = direct)
	// Call-site position for replayed accesses: two calls to the same
	// helper share the access's textual position, so the call site is
	// what distinguishes their effect copies.
	csLine, csCol int
	wrapped       bool
	// Wrap copies model the *next* iteration of a loop; they may only
	// race with accesses recorded inside that loop's body, whose indexes
	// span [wrapLo, wrapHi) in the access list.
	wrapLo, wrapHi int
}

// txRange is the refinement state of one thread dimension.
type txRange struct {
	hi  *affine // threadIdx.d ≤ hi (nil unbounded)
	lo  *affine // threadIdx.d ≥ lo (default 0)
	pin *affine // threadIdx.d == pin (from equality guards)
}

type analyzer struct {
	prog *minicuda.Program
	fn   *minicuda.Function
	sums map[*minicuda.Function]*fnSummary

	env      env
	tx       [3]txRange
	version  int
	interval int
	accesses []access
	divDepth int // enclosing thread-dependent conditions
	anyDepth int // enclosing conditions of any kind
	record   bool
	quiet    bool // suppress diagnostics (summary runs record accesses only)
	interp   bool // replay precise callee summaries at call sites
	exitWarn bool // a thread-dependent early return has occurred
	nonnegT  map[string]bool
	attained map[string]bool // uniform terms whose minimum 0 is attained

	// Summary-collection state (set for buildEffects runs only).
	trackSummary bool
	retEvs       []ev
	barrierLog   []barrierInfo

	diags []Diagnostic

	barrierDivSeen map[siteKey]bool
	oobSeen        map[siteKey]bool
	assignedMemo   map[minicuda.Node]map[string]bool
}

func newAnalyzer(prog *minicuda.Program, fn *minicuda.Function, sums map[*minicuda.Function]*fnSummary) *analyzer {
	a := &analyzer{
		prog:           prog,
		fn:             fn,
		sums:           sums,
		env:            make(env),
		record:         true,
		nonnegT:        make(map[string]bool),
		attained:       make(map[string]bool),
		barrierDivSeen: make(map[siteKey]bool),
		oobSeen:        make(map[siteKey]bool),
		assignedMemo:   make(map[minicuda.Node]map[string]bool),
	}
	for _, p := range fn.Params {
		a.env[p.Sym] = &varInfo{ver: a.nextVer()}
	}
	return a
}

func (a *analyzer) nextVer() int { a.version++; return a.version }

func (a *analyzer) nonneg(name string) bool {
	for _, f := range strings.Split(name, "*") {
		if !a.nonnegT[f] {
			return false
		}
	}
	return true
}

// rangeOf derives bounds for an affine value from its terms: thread
// dimensions and known-nonnegative uniforms have minimum 0, so the
// expression's minimum is its constant when every coefficient is
// positive on such a term. The minimum is tight (attained by a real
// thread) when each contributing term actually reaches 0 — thread
// indexes do (thread 0), and so do terms containing a blockIdx factor
// (block 0). Upper bounds are unknown without launch geometry.
func (a *analyzer) rangeOf(af *affine) (lo, hi *affine, loT, hiT bool) {
	if af == nil {
		return nil, nil, false, false
	}
	if af.isConst() {
		return af, af, true, true
	}
	loT = true
	for _, tc := range af.terms {
		nn := tc.t.td != tdNone || a.nonneg(tc.t.u)
		if tc.k <= 0 || !nn {
			return nil, nil, false, false
		}
		if tc.t.td == tdNone && !a.attainsZero(tc.t.u) {
			loT = false
		}
	}
	return affConst(af.c), nil, loT, false
}

// attainsZero reports whether a uniform term name provably takes the
// value 0 on some thread (so a lower bound using it is attained).
func (a *analyzer) attainsZero(name string) bool {
	for _, f := range strings.Split(name, "*") {
		if a.attained[f] {
			return true // one zero factor zeroes the product
		}
	}
	return false
}

func (a *analyzer) run() {
	a.walkStmt(a.fn.Body)
	a.checkRaces()
	a.checkPerf()
}

func (a *analyzer) diag(id string, sev Severity, tok minicuda.Token, msg, hint string) {
	if !a.record || a.quiet {
		return
	}
	a.diags = append(a.diags, Diagnostic{
		ID: id, Severity: sev, Kernel: a.fn.Name, Pos: tok.Pos(), Message: msg, Hint: hint,
	})
}

// ---- Statements ------------------------------------------------------------

// walkStmt interprets one statement and reports whether it definitely
// transfers control out (return/break/continue on every path).
func (a *analyzer) walkStmt(s minicuda.Stmt) bool {
	switch st := s.(type) {
	case *minicuda.Block:
		term := false
		for _, sub := range st.Stmts {
			if term {
				break // unreachable; hygiene pass reports it
			}
			term = a.walkStmt(sub)
		}
		return term
	case *minicuda.DeclStmt:
		for _, d := range st.Decls {
			vi := &varInfo{ver: a.nextVer()}
			if d.Init != nil {
				e := a.eval(d.Init)
				vi.aff, vi.lo, vi.hi = e.aff, e.lo, e.hi
				vi.loT, vi.hiT = e.loTight, e.hiTight
				vi.tainted = e.tainted || a.divDepth > 0
			}
			a.env[d.Sym] = vi
		}
		return false
	case *minicuda.ExprStmt:
		a.eval(st.X)
		return false
	case *minicuda.IfStmt:
		return a.walkIf(st)
	case *minicuda.ForStmt:
		a.walkFor(st)
		return false
	case *minicuda.WhileStmt:
		a.walkWhile(st)
		return false
	case *minicuda.ReturnStmt:
		if st.X != nil {
			v := a.eval(st.X)
			if a.trackSummary && a.record {
				a.retEvs = append(a.retEvs, v)
			}
		}
		return true
	case *minicuda.BreakStmt, *minicuda.ContinueStmt:
		return true
	case *minicuda.EmptyStmt, nil:
		return false
	}
	return false
}

func (a *analyzer) walkIf(st *minicuda.IfStmt) bool {
	cond := a.eval(st.Cond)

	base := a.env
	savedTx := a.tx

	a.env = base.clone()
	a.applyRefinement(st.Cond, true)
	a.enterBranch(cond.tainted)
	thenTerm := a.walkStmt(st.Then)
	a.leaveBranch(cond.tainted)
	thenEnv := a.env
	a.tx = savedTx

	a.env = base.clone()
	elseTerm := false
	if st.Else != nil {
		a.applyRefinement(st.Cond, false)
		a.enterBranch(cond.tainted)
		elseTerm = a.walkStmt(st.Else)
		a.leaveBranch(cond.tainted)
	} else if thenTerm {
		// if (c) return; — the fall-through path has !c: keep its
		// refinement for the rest of the function.
		a.applyRefinement(st.Cond, false)
	}
	elseEnv := a.env
	a.tx = savedTx

	switch {
	case thenTerm && !elseTerm:
		a.env = elseEnv
	case elseTerm && !thenTerm:
		a.env = thenEnv
	default:
		a.env = mergeEnv(thenEnv, elseEnv, cond.tainted, a.nextVer)
	}

	if cond.tainted && (thenTerm || elseTerm) && !(thenTerm && elseTerm) {
		a.exitWarn = true
	}
	return thenTerm && elseTerm
}

func (a *analyzer) enterBranch(tainted bool) {
	a.anyDepth++
	if tainted {
		a.divDepth++
	}
}

func (a *analyzer) leaveBranch(tainted bool) {
	a.anyDepth--
	if tainted {
		a.divDepth--
	}
}

// mergeEnv joins two branch environments; variables that differ get the
// condition's taint added (the phi of a divergent assignment is
// thread-dependent) and lose their affine value.
func mergeEnv(a, b env, condTaint bool, nextVer func() int) env {
	out := make(env, len(a))
	for _, s := range sortedSyms(a) {
		va := a[s]
		vb, ok := b[s]
		if !ok {
			cp := *va
			out[s] = &cp
			continue
		}
		m := &varInfo{tainted: va.tainted || vb.tainted, ver: va.ver}
		if vb.ver > m.ver {
			m.ver = vb.ver
		}
		if va.aff != nil && vb.aff != nil && affEqual(va.aff, vb.aff) {
			m.aff = va.aff
		} else if va.aff != nil || vb.aff != nil || va.ver != vb.ver {
			m.tainted = m.tainted || condTaint
			m.ver = nextVer()
		}
		if va.lo != nil && vb.lo != nil && affEqual(va.lo, vb.lo) {
			m.lo, m.loT = va.lo, va.loT && vb.loT
		}
		if va.hi != nil && vb.hi != nil && affEqual(va.hi, vb.hi) {
			m.hi, m.hiT = va.hi, va.hiT && vb.hiT
		}
		m.knownNneg = va.knownNneg && vb.knownNneg
		out[s] = m
	}
	return out
}

// walkFor interprets a for loop: a non-recording fixpoint stabilizes the
// taint/value environment, canonical constant-step loops get a range for
// the induction variable, then one recording pass walks the body with
// barrier-interval wrap-around.
func (a *analyzer) walkFor(st *minicuda.ForStmt) {
	if st.Init != nil {
		a.walkStmt(st.Init)
	}
	iv, lo, hi, hiTight := a.canonicalFor(st)

	assigned := a.assignedIn(st.Body)
	if st.Post != nil {
		post := a.assignedIn(st.Post)
		if len(post) > 0 {
			merged := make(map[string]bool, len(assigned)+len(post))
			for k := range assigned {
				merged[k] = true
			}
			for k := range post {
				merged[k] = true
			}
			assigned = merged
		}
	}

	a.fixpoint(func() {
		if st.Cond != nil {
			a.eval(st.Cond)
		}
		a.walkStmt(st.Body)
		if st.Post != nil {
			a.eval(st.Post)
		}
	})

	var condTaint bool
	if st.Cond != nil {
		condTaint = a.eval(st.Cond).tainted
	}
	if iv != nil {
		vi := a.env[iv]
		vi.aff = nil // reads become an opaque versioned term with the loop range
		vi.lo, vi.hi = lo, hi
		vi.loT, vi.hiT = true, hiTight
		vi.knownNneg = geZero(lo, a.nonneg)
		vi.ver = a.nextVer()
	}

	constTrip := iv != nil && lo != nil && hi != nil && lo.isConst() && hi.isConst() && lo.c <= hi.c
	guarded := !constTrip // zero-trip-count loops make the body conditional

	i0 := a.interval
	startIdx := len(a.accesses)
	preEnv := a.env.clone()
	savedTx := a.tx
	if st.Cond != nil {
		// Inside the body the condition held when it was last checked.
		a.applyRefinement(st.Cond, true)
	}
	if guarded {
		a.anyDepth++
	}
	if condTaint {
		a.divDepth++
	}
	a.walkStmt(st.Body)
	if st.Post != nil {
		a.eval(st.Post)
	}
	if condTaint {
		a.divDepth--
	}
	if guarded {
		a.anyDepth--
	}
	a.wrapIntervals(i0, startIdx, assigned)
	a.havoc(assigned)
	a.tx = savedTx
	// Body-only refinements don't survive the loop; variables the body
	// never assigns revert to their pre-loop state.
	for s, v := range preEnv {
		if !assigned[s.Name] {
			a.env[s] = v
		}
	}
}

func (a *analyzer) walkWhile(st *minicuda.WhileStmt) {
	assigned := a.assignedIn(st.Body)

	a.fixpoint(func() {
		a.eval(st.Cond)
		a.walkStmt(st.Body)
	})

	condTaint := a.eval(st.Cond).tainted
	i0 := a.interval
	startIdx := len(a.accesses)
	preEnv := a.env.clone()
	savedTx := a.tx
	if !st.DoFirst {
		// A do-while body's first iteration runs unconditionally, so the
		// condition refinement only applies to plain while loops.
		a.applyRefinement(st.Cond, true)
		a.anyDepth++
	}
	if condTaint {
		a.divDepth++
	}
	a.walkStmt(st.Body)
	if condTaint {
		a.divDepth--
	}
	if !st.DoFirst {
		a.anyDepth--
	}
	a.wrapIntervals(i0, startIdx, assigned)
	a.havoc(assigned)
	a.tx = savedTx
	for s, v := range preEnv {
		if !assigned[s.Name] {
			a.env[s] = v
		}
	}
}

// fixpoint runs body in non-recording mode until the environment
// stabilizes. A variable whose affine value or bounds change between
// iterations is not loop-invariant: it sticks to "unknown" so the
// recording pass models an arbitrary iteration, not the first one.
func (a *analyzer) fixpoint(body func()) {
	savedRecord := a.record
	a.record = false
	sticky := make(map[*minicuda.Symbol]bool)
	for i := 0; i < 6; i++ {
		prev := make(map[*minicuda.Symbol]varInfo, len(a.env))
		for s, v := range a.env {
			prev[s] = *v
		}
		body()
		changed := false
		for _, s := range sortedSyms(a.env) {
			v := a.env[s]
			pv, ok := prev[s]
			if !ok {
				continue // declared inside the body; scoped to it
			}
			if v.tainted != pv.tainted {
				changed = true
			}
			stable := (v.aff == nil) == (pv.aff == nil) &&
				(v.aff == nil || affEqual(v.aff, pv.aff)) &&
				boundEq(v.lo, pv.lo) && boundEq(v.hi, pv.hi)
			if sticky[s] || !stable {
				if !sticky[s] {
					sticky[s] = true
					changed = true
				}
				v.aff, v.lo, v.hi = nil, nil, nil
				v.loT, v.hiT, v.knownNneg = false, false, false
				v.ver = a.nextVer()
			}
		}
		if !changed && i > 0 {
			break
		}
	}
	a.record = savedRecord
}

func boundEq(x, y *affine) bool {
	if x == nil || y == nil {
		return x == y
	}
	return affEqual(x, y)
}

// havoc invalidates loop-assigned variables after the loop: the
// recording pass modeled one iteration, but the loop may have run any
// number of times, so neither the value nor the in-body range survives.
func (a *analyzer) havoc(assigned map[string]bool) {
	for _, s := range sortedSyms(a.env) {
		if assigned[s.Name] {
			v := a.env[s]
			v.aff, v.lo, v.hi = nil, nil, nil
			v.loT, v.hiT, v.knownNneg = false, false, false
			v.ver = a.nextVer()
		}
	}
}

// sortedSyms returns the environment's symbols in a stable order so
// version allocation (and therefore opaque term names) is deterministic.
func sortedSyms(e env) []*minicuda.Symbol {
	syms := make([]*minicuda.Symbol, 0, len(e))
	for s := range e {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Name != syms[j].Name {
			return syms[i].Name < syms[j].Name
		}
		return syms[i].Slot < syms[j].Slot
	})
	return syms
}

// wrapIntervals models the loop back-edge for race detection: if the
// body contains a barrier, accesses from the body's first barrier
// interval also execute (next iteration) concurrently with the last
// interval of this iteration. Loop-assigned variables are renamed in the
// copies so "k" in the copy means next iteration's k.
func (a *analyzer) wrapIntervals(i0, startIdx int, assigned map[string]bool) {
	if !a.record || a.interval == i0 {
		return
	}
	end := len(a.accesses)
	for i := startIdx; i < end; i++ {
		ac := a.accesses[i]
		if ac.interval != i0 || ac.wrapped {
			continue
		}
		ac.interval = a.interval
		ac.wrapped = true
		ac.wrapLo, ac.wrapHi = startIdx, end
		ac.idx = ac.idx.renameWrapped(assigned)
		ac.lo = ac.lo.renameWrapped(assigned)
		ac.hi = ac.hi.renameWrapped(assigned)
		a.accesses = append(a.accesses, ac)
	}
}

// canonicalFor recognizes `for (i = A; i < B; i += C)` with C > 0 and
// returns the induction variable and its [lo, hi] range over the loop.
func (a *analyzer) canonicalFor(st *minicuda.ForStmt) (iv *minicuda.Symbol, lo, hi *affine, hiTight bool) {
	var initVal ev
	switch init := st.Init.(type) {
	case *minicuda.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return nil, nil, nil, false
		}
		iv = init.Decls[0].Sym
		initVal = a.snapshotEval(init.Decls[0].Init)
	case *minicuda.ExprStmt:
		as, ok := init.X.(*minicuda.Assign)
		if !ok || as.Op != "=" {
			return nil, nil, nil, false
		}
		vr, ok := as.L.(*minicuda.VarRef)
		if !ok {
			return nil, nil, nil, false
		}
		iv = vr.Sym
		initVal = a.snapshotEval(as.R)
	default:
		return nil, nil, nil, false
	}
	if iv == nil || initVal.aff == nil {
		return nil, nil, nil, false
	}
	cmp, ok := st.Cond.(*minicuda.Binary)
	if !ok || (cmp.Op != "<" && cmp.Op != "<=") {
		return nil, nil, nil, false
	}
	lv, ok := cmp.L.(*minicuda.VarRef)
	if !ok || lv.Sym != iv {
		return nil, nil, nil, false
	}
	bound := a.snapshotEval(cmp.R)
	if bound.aff == nil || bound.tainted {
		return nil, nil, nil, false
	}
	step := int64(0)
	switch post := st.Post.(type) {
	case *minicuda.Unary:
		if post.Op == "++" {
			step = 1
		}
	case *minicuda.Postfix:
		if post.Op == "++" {
			step = 1
		}
	case *minicuda.Assign:
		if vr, ok := post.L.(*minicuda.VarRef); ok && vr.Sym == iv {
			switch post.Op {
			case "+=":
				if c, ok := post.R.(*minicuda.IntLit); ok && c.Val > 0 {
					step = c.Val
				}
			case "=":
				// i = i + c and i = c + i.
				if b, ok := post.R.(*minicuda.Binary); ok && b.Op == "+" {
					l, lOK := b.L.(*minicuda.VarRef)
					r, rOK := b.R.(*minicuda.VarRef)
					if lOK && l.Sym == iv {
						if c, ok := b.R.(*minicuda.IntLit); ok && c.Val > 0 {
							step = c.Val
						}
					} else if rOK && r.Sym == iv {
						if c, ok := b.L.(*minicuda.IntLit); ok && c.Val > 0 {
							step = c.Val
						}
					}
				}
			}
		}
	}
	if step <= 0 {
		return nil, nil, nil, false
	}
	hi = affSub(bound.aff, affConst(1))
	if cmp.Op == "<=" {
		hi = bound.aff
	}
	// The maximum is attained only for unit step (for larger steps the
	// last value is A + k·C which may fall short of B-1).
	return iv, initVal.aff, hi, step == 1
}

// snapshotEval evaluates an expression without recording accesses or
// mutating state (for loop-shape recognition). eval only mutates the
// environment through assignments, so saving the handful of variables
// the expression assigns is enough — cloning the whole environment here
// was one of the analyzer's hottest allocation sites.
func (a *analyzer) snapshotEval(e minicuda.Expr) ev {
	saved := a.record
	a.record = false
	assigned := a.assignedIn(e)
	type savedVar struct {
		vi  *varInfo
		old varInfo
	}
	var savedVars []savedVar
	if len(assigned) > 0 {
		for s, v := range a.env {
			if assigned[s.Name] {
				savedVars = append(savedVars, savedVar{v, *v})
			}
		}
	}
	v := a.eval(e)
	for _, sv := range savedVars {
		*sv.vi = sv.old
	}
	a.record = saved
	return v
}

// assignedIn is collectAssigned memoized on the node pointer: loop
// bodies are re-walked many times (outer fixpoints re-enter inner
// loops), and the assigned set of a statement never changes.
func (a *analyzer) assignedIn(n minicuda.Node) map[string]bool {
	if m, ok := a.assignedMemo[n]; ok {
		return m
	}
	m := map[string]bool{}
	if s, ok := n.(minicuda.Stmt); ok {
		collectAssigned(s, m)
	} else if e, ok := n.(minicuda.Expr); ok {
		collectAssigned(&minicuda.ExprStmt{X: e}, m)
	}
	a.assignedMemo[n] = m
	return m
}

// collectAssigned gathers the names of variables assigned anywhere in a
// statement (for loop havoc and wrap-around renaming).
func collectAssigned(s minicuda.Stmt, out map[string]bool) {
	walkNodes(s, func(n minicuda.Node) {
		switch x := n.(type) {
		case *minicuda.Assign:
			if vr, ok := x.L.(*minicuda.VarRef); ok {
				out[vr.Name] = true
			}
		case *minicuda.Unary:
			if x.Op == "++" || x.Op == "--" {
				if vr, ok := x.X.(*minicuda.VarRef); ok {
					out[vr.Name] = true
				}
			}
		case *minicuda.Postfix:
			if vr, ok := x.X.(*minicuda.VarRef); ok {
				out[vr.Name] = true
			}
		case *minicuda.DeclStmt:
			for _, d := range x.Decls {
				out[d.Name] = true
			}
		}
	})
}

// walkNodes visits every node of a statement tree.
func walkNodes(s minicuda.Stmt, f func(minicuda.Node)) {
	var ws func(minicuda.Stmt)
	var we func(minicuda.Expr)
	we = func(e minicuda.Expr) {
		if e == nil {
			return
		}
		f(e)
		switch x := e.(type) {
		case *minicuda.Unary:
			we(x.X)
		case *minicuda.Postfix:
			we(x.X)
		case *minicuda.Binary:
			we(x.L)
			we(x.R)
		case *minicuda.Assign:
			we(x.L)
			we(x.R)
		case *minicuda.Ternary:
			we(x.Cond)
			we(x.Then)
			we(x.Else)
		case *minicuda.Index:
			we(x.Base)
			we(x.Idx)
		case *minicuda.Call:
			for _, ar := range x.Args {
				we(ar)
			}
		case *minicuda.Cast:
			we(x.X)
		}
	}
	ws = func(s minicuda.Stmt) {
		if s == nil {
			return
		}
		f(s)
		switch x := s.(type) {
		case *minicuda.Block:
			for _, sub := range x.Stmts {
				ws(sub)
			}
		case *minicuda.DeclStmt:
			for _, d := range x.Decls {
				we(d.Init)
			}
		case *minicuda.ExprStmt:
			we(x.X)
		case *minicuda.IfStmt:
			we(x.Cond)
			ws(x.Then)
			ws(x.Else)
		case *minicuda.ForStmt:
			ws(x.Init)
			we(x.Cond)
			we(x.Post)
			ws(x.Body)
		case *minicuda.WhileStmt:
			we(x.Cond)
			ws(x.Body)
		case *minicuda.ReturnStmt:
			we(x.X)
		}
	}
	ws(s)
}
