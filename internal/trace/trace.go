// Package trace is WebGPU's lightweight end-to-end job tracing layer:
// the answer to the v1 operational blind spot of §IV, where operators
// could not tell whether a slow submission spent its seconds in the web
// tier, the broker, or a worker. Every job API request opens a Trace;
// named child spans (queue_wait, admission, compile, exec[dataset=i],
// grade, ...) are recorded by whichever tier does the work; the trace ID
// rides with the job across the dispatch boundary (as a context value in
// v1's in-process push path, as a broker message tag plus job field in
// v2) and worker-side spans are carried back on the Result so the web
// tier always holds the complete picture. A fixed-capacity ring of
// recently finished traces backs the /api/admin/traces endpoints.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one named, timed stage of a job's lifecycle.
type Span struct {
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	Dur   time.Duration     `json:"dur_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace accumulates the spans of one job. All methods are safe for
// concurrent use and safe on a nil receiver, so instrumented code paths
// never need to guard "is tracing enabled here".
type Trace struct {
	id      string
	started time.Time

	mu    sync.Mutex
	spans []Span
	ended time.Time
}

// New creates a standalone trace collector with the given ID — the form
// a worker node builds when a job arrives carrying a trace ID but no
// in-process trace (the v2 poll path).
func New(id string) *Trace {
	return &Trace{id: id, started: time.Now()}
}

// NewID generates a fresh trace identifier.
func NewID() string {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		panic(err)
	}
	return "tr-" + hex.EncodeToString(b)
}

// ID returns the trace identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Active is an open span; call End (or EndAttrs) to record it.
type Active struct {
	tr    *Trace
	name  string
	start time.Time
	attrs map[string]string
}

// StartSpan opens a named span. Optional kv pairs become attributes.
func (t *Trace) StartSpan(name string, kv ...string) *Active {
	if t == nil {
		return nil
	}
	a := &Active{tr: t, name: name, start: time.Now()}
	a.setAttrs(kv)
	return a
}

func (a *Active) setAttrs(kv []string) {
	for i := 0; i+1 < len(kv); i += 2 {
		if a.attrs == nil {
			a.attrs = map[string]string{}
		}
		a.attrs[kv[i]] = kv[i+1]
	}
}

// SetAttr attaches an attribute to an open span.
func (a *Active) SetAttr(k, v string) *Active {
	if a == nil {
		return nil
	}
	if a.attrs == nil {
		a.attrs = map[string]string{}
	}
	a.attrs[k] = v
	return a
}

// End closes the span and records it on the trace.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.tr.Add(Span{Name: a.name, Start: a.start, Dur: time.Since(a.start), Attrs: a.attrs})
}

// EndAttrs closes the span with final kv attribute pairs.
func (a *Active) EndAttrs(kv ...string) {
	if a == nil {
		return
	}
	a.setAttrs(kv)
	a.End()
}

// Add records an already-closed span (used to merge spans a remote
// worker reported back on its Result).
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// AddAll merges a batch of completed spans.
func (t *Trace) AddAll(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Finish marks the trace complete. Finishing twice is harmless.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.ended.IsZero() {
		t.ended = time.Now()
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Data is the JSON rendering of a trace for the admin API.
type Data struct {
	ID       string        `json:"id"`
	Started  time.Time     `json:"started"`
	Dur      time.Duration `json:"dur_ns"`
	Finished bool          `json:"finished"`
	Spans    []Span        `json:"spans"`
}

// Snapshot renders the trace for the admin API.
func (t *Trace) Snapshot() Data {
	if t == nil {
		return Data{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := Data{ID: t.id, Started: t.started, Spans: append([]Span(nil), t.spans...)}
	if !t.ended.IsZero() {
		d.Finished = true
		d.Dur = t.ended.Sub(t.started)
	} else {
		d.Dur = time.Since(t.started)
	}
	return d
}

// DefaultCapacity is how many recent traces a Store retains.
const DefaultCapacity = 256

// Store is a fixed-capacity ring of recent traces, newest evicting
// oldest, indexed by trace ID.
type Store struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ring []string // insertion order, oldest first
}

// NewStore creates a store retaining up to capacity traces
// (<= 0 uses DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, byID: map[string]*Trace{}}
}

// NewTrace creates, tracks, and returns a trace with a fresh ID.
func (s *Store) NewTrace() *Trace {
	tr := New(NewID())
	s.Track(tr)
	return tr
}

// Track adds a trace to the ring, evicting the oldest beyond capacity.
func (s *Store) Track(tr *Trace) {
	if s == nil || tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[tr.id]; dup {
		return
	}
	s.byID[tr.id] = tr
	s.ring = append(s.ring, tr.id)
	for len(s.ring) > s.cap {
		delete(s.byID, s.ring[0])
		s.ring = s.ring[1:]
	}
}

// Get returns the trace with the given ID, or nil.
func (s *Store) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Recent returns up to n traces, newest first (n <= 0 returns all).
func (s *Store) Recent(n int) []Data {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ids := append([]string(nil), s.ring...)
	trs := make([]*Trace, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		trs = append(trs, s.byID[ids[i]])
	}
	s.mu.Unlock()
	if n > 0 && len(trs) > n {
		trs = trs[:n]
	}
	out := make([]Data, len(trs))
	for i, tr := range trs {
		out[i] = tr.Snapshot()
	}
	return out
}

// Len reports how many traces are retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}
