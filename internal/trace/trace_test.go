package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Errorf("nil trace ID = %q", tr.ID())
	}
	sp := tr.StartSpan("x", "k", "v")
	sp.SetAttr("a", "b")
	sp.End()
	sp.EndAttrs("c", "d")
	tr.Add(Span{Name: "y"})
	tr.AddAll([]Span{{Name: "z"}})
	tr.Finish()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil trace spans = %v", got)
	}
	if d := tr.Snapshot(); d.ID != "" || len(d.Spans) != 0 {
		t.Errorf("nil trace snapshot = %+v", d)
	}
	var st *Store
	st.Track(New("tr-x"))
	if st.Get("tr-x") != nil || st.Len() != 0 || st.Recent(1) != nil {
		t.Error("nil store misbehaved")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New("tr-1")
	sp := tr.StartSpan("compile", "cache", "miss")
	time.Sleep(time.Millisecond)
	sp.SetAttr("image", "cuda")
	sp.End()
	tr.StartSpan("grade").EndAttrs("correct", "true")
	tr.AddAll([]Span{{Name: "exec", Dur: 5 * time.Millisecond}})
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Name != "compile" || spans[0].Attrs["cache"] != "miss" || spans[0].Attrs["image"] != "cuda" {
		t.Errorf("compile span = %+v", spans[0])
	}
	if spans[0].Dur <= 0 {
		t.Errorf("compile span has no duration: %+v", spans[0])
	}
	if spans[1].Attrs["correct"] != "true" {
		t.Errorf("grade span = %+v", spans[1])
	}
	d := tr.Snapshot()
	if !d.Finished || d.ID != "tr-1" || len(d.Spans) != 3 || d.Dur <= 0 {
		t.Errorf("snapshot = %+v", d)
	}
}

func TestStoreRingEviction(t *testing.T) {
	st := NewStore(3)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, st.NewTrace().ID())
	}
	if st.Len() != 3 {
		t.Fatalf("len = %d, want 3", st.Len())
	}
	for _, id := range ids[:2] {
		if st.Get(id) != nil {
			t.Errorf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[2:] {
		if st.Get(id) == nil {
			t.Errorf("recent trace %s lost", id)
		}
	}
	recent := st.Recent(2)
	if len(recent) != 2 || recent[0].ID != ids[4] || recent[1].ID != ids[3] {
		t.Errorf("recent = %+v, want newest first", recent)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

// TestConcurrentUse exercises trace + store under -race.
func TestConcurrentUse(t *testing.T) {
	st := NewStore(8)
	tr := st.NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StartSpan(fmt.Sprintf("s%d-%d", g, i)).End()
				st.NewTrace()
				st.Recent(4)
				_ = tr.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Errorf("spans = %d, want 400", got)
	}
}
