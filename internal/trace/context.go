package trace

import "context"

type ctxKey struct{}

// NewContext returns a context carrying the trace — how a trace rides
// the v1 in-process dispatch path from handler to worker node.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. All Trace
// methods are nil-safe, so callers can instrument unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
