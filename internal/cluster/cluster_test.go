package cluster

import (
	"testing"

	"webgpu/internal/autoscale"
	"webgpu/internal/workload"
)

func courseArrivals() []float64 {
	m := workload.Figure1Model()
	return workload.SubmissionArrivals(m.HourlySeries(), 2.0)
}

func TestSimulateConservation(t *testing.T) {
	arr := []float64{20, 20, 0, 0}
	res := Simulate(arr, DefaultConfig(4))
	if res.Completed+res.Dropped != 40 {
		t.Errorf("jobs lost: %d + %d != 40", res.Completed, res.Dropped)
	}
}

func TestSchedulerLatencyAddsToEveryJob(t *testing.T) {
	cfg := DefaultConfig(100) // ample capacity: waits are pure overhead
	arr := []float64{10, 10}
	res := Simulate(arr, cfg)
	if res.MeanWaitHours < cfg.SchedIntervalHours {
		t.Errorf("mean wait %.3f < scheduler latency %.3f", res.MeanWaitHours, cfg.SchedIntervalHours)
	}
}

func TestExternalLoadReducesCapacity(t *testing.T) {
	arr := courseArrivals()
	quiet := DefaultConfig(4)
	quiet.ExternalLoad = 0
	busy := DefaultConfig(4)
	busy.ExternalLoad = 0.8
	rq := Simulate(arr, quiet)
	rb := Simulate(arr, busy)
	if rb.P95WaitHours <= rq.P95WaitHours {
		t.Errorf("busy cluster p95 %.2f <= quiet %.2f", rb.P95WaitHours, rq.P95WaitHours)
	}
}

func TestSizeForPeak(t *testing.T) {
	arr := courseArrivals()
	cfg := DefaultConfig(0)
	n := SizeForPeak(arr, cfg)
	if n <= 0 {
		t.Fatalf("n = %d", n)
	}
	cfg.Nodes = n
	res := Simulate(arr, cfg)
	if res.Dropped > res.Completed/100 {
		t.Errorf("peak-sized cluster dropped %d of %d", res.Dropped, res.Completed)
	}
}

// The D2 comparison: the peak-provisioned static cluster is mostly idle
// over the course (enrollment decay), while WebGPU's reactive fleet keeps
// utilization high at similar latency.
func TestClusterIdleVsElasticWebGPU(t *testing.T) {
	arr := courseArrivals()
	ccfg := DefaultConfig(0)
	ccfg.Nodes = SizeForPeak(arr, ccfg)
	clusterRes := Simulate(arr, ccfg)

	elastic := autoscale.Simulate(arr, workload.Figure1Model().Start, 30,
		autoscale.Reactive{PerWorkerPerHour: 30, TargetHours: 1, Min: 1, Max: 100})

	if clusterRes.UtilizationPct >= elastic.UtilizationPct {
		t.Errorf("cluster utilization %.1f%% >= elastic %.1f%%",
			clusterRes.UtilizationPct, elastic.UtilizationPct)
	}
	if clusterRes.UtilizationPct > 30 {
		t.Errorf("peak-provisioned shared cluster should be mostly idle, got %.1f%%",
			clusterRes.UtilizationPct)
	}
	t.Logf("cluster: %d nodes, util %.1f%%, p95 %.2fh; elastic: util %.1f%%, p95 %.2fh",
		ccfg.Nodes, clusterRes.UtilizationPct, clusterRes.P95WaitHours,
		elastic.UtilizationPct, elastic.P95WaitHours)
}
