// Package cluster models the traditional educational/research HPC batch
// cluster the paper compares WebGPU against (§II-B option 3, §III). Jobs
// go through a batch scheduler with a dispatch interval, share the
// machine with competing research workloads under fair-share, and run on
// a statically provisioned node count — the properties that make a
// cluster a poor fit for a MOOC: scheduling latency of little pedagogical
// value, competition with other users, and peak provisioning that sits
// idle once enrollment decays.
package cluster

import (
	"math"
	"sort"
)

// Config describes the cluster.
type Config struct {
	Nodes              int     // static node count
	JobsPerNodePerHour float64 // service rate for course jobs
	ExternalLoad       float64 // fraction of the cluster busy with research jobs (0..1)
	SchedIntervalHours float64 // batch scheduler dispatch latency added to every job
	FairShareCap       float64 // max fraction of the cluster the course may use (0..1]
}

// DefaultConfig mirrors a mid-2010s shared campus cluster.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:              nodes,
		JobsPerNodePerHour: 60,
		ExternalLoad:       0.5,
		SchedIntervalHours: 0.1, // ~6 minutes of scheduling/launch overhead
		FairShareCap:       0.5,
	}
}

// Result summarizes a simulated course on the cluster.
type Result struct {
	Completed      int
	Dropped        int
	NodeHours      float64 // provisioned node-hours (static: nodes × course length)
	MeanWaitHours  float64
	P95WaitHours   float64
	MaxQueue       int
	UtilizationPct float64 // course-busy node-hours / provisioned node-hours
}

// Simulate pushes the hourly arrival series through the cluster.
func Simulate(arrivals []float64, cfg Config) Result {
	res := Result{}
	type job struct{ arrived int }
	var queue []job
	var waits []float64
	carry := 0.0
	var busyNodeHours float64

	// Effective course capacity per hour: nodes not taken by external
	// load, further capped by fair-share.
	avail := float64(cfg.Nodes) * (1 - cfg.ExternalLoad)
	if cap := float64(cfg.Nodes) * cfg.FairShareCap; avail > cap {
		avail = cap
	}
	capacityPerHour := avail * cfg.JobsPerNodePerHour

	for t := 0; t < len(arrivals); t++ {
		carry += arrivals[t]
		n := int(carry)
		carry -= float64(n)
		for i := 0; i < n; i++ {
			queue = append(queue, job{arrived: t})
		}
		served := int(capacityPerHour)
		if served > len(queue) {
			served = len(queue)
		}
		for i := 0; i < served; i++ {
			// Wait = queueing time + the batch scheduler's dispatch latency,
			// paid by every job.
			waits = append(waits, float64(t-queue[i].arrived)+cfg.SchedIntervalHours)
		}
		busyNodeHours += float64(served) / math.Max(cfg.JobsPerNodePerHour, 1e-9)
		queue = queue[served:]
		if len(queue) > res.MaxQueue {
			res.MaxQueue = len(queue)
		}
	}

	res.Completed = len(waits)
	res.Dropped = len(queue)
	res.NodeHours = float64(cfg.Nodes) * float64(len(arrivals))
	if res.NodeHours > 0 {
		res.UtilizationPct = 100 * busyNodeHours / res.NodeHours
	}
	if len(waits) > 0 {
		var sum float64
		for _, w := range waits {
			sum += w
		}
		res.MeanWaitHours = sum / float64(len(waits))
		sorted := append([]float64(nil), waits...)
		sort.Float64s(sorted)
		res.P95WaitHours = sorted[int(0.95*float64(len(sorted)-1))]
	}
	return res
}

// SizeForPeak returns the node count needed to keep up with the peak
// arrival rate — what static provisioning must buy.
func SizeForPeak(arrivals []float64, cfg Config) int {
	peak := 0.0
	for _, a := range arrivals {
		if a > peak {
			peak = a
		}
	}
	perNode := cfg.JobsPerNodePerHour * (1 - cfg.ExternalLoad)
	if cap := cfg.JobsPerNodePerHour * cfg.FairShareCap; perNode > cap {
		perNode = cap
	}
	if perNode <= 0 {
		return 0
	}
	return int(math.Ceil(peak / perNode))
}
