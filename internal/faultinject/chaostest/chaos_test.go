package chaostest

import (
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/queue"
	"webgpu/internal/worker"
)

// soakSeeds returns the seeds to run: CHAOS_SEED=<n> replays exactly one
// (the loop a failing CI run tells you to do), otherwise a fixed set so
// the suite is deterministic run to run.
func soakSeeds(t *testing.T) []int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer: %v", v, err)
		}
		return []int64{n}
	}
	return []int64{1, 2, 3}
}

func soakScenario(t *testing.T, seed int64) Scenario {
	jobs := 200
	if testing.Short() {
		jobs = 60
	}
	return Scenario{
		Seed:        seed,
		Jobs:        jobs,
		Workers:     4,
		FaultRate:   0.12,
		Visibility:  150 * time.Millisecond,
		Timeout:     90 * time.Second,
		KillWorkers: true,
	}
}

func TestChaosSoakV2(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rep, err := RunV2(soakScenario(t, seed))
			if err != nil {
				t.Fatalf("%v\nreplay with CHAOS_SEED=%d", err, seed)
			}
			t.Logf("v2 soak: %s", rep)
			if rep.Graded != rep.Jobs {
				t.Fatalf("graded %d of %d jobs; replay with CHAOS_SEED=%d", rep.Graded, rep.Jobs, seed)
			}
		})
	}
}

func TestChaosSoakV1(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rep, err := RunV1(soakScenario(t, seed))
			if err != nil {
				t.Fatalf("%v\nreplay with CHAOS_SEED=%d", err, seed)
			}
			t.Logf("v1 soak: %s", rep)
			if rep.Graded != rep.Jobs {
				t.Fatalf("graded %d of %d jobs; replay with CHAOS_SEED=%d", rep.Graded, rep.Jobs, seed)
			}
		})
	}
}

// TestChaosSoakV2DeadLetterRedrive turns the fault rate up and the
// attempt budget down so jobs actually poison into the DLQ, then checks
// the phase-2 redrive still lands every one of them exactly once.
func TestChaosSoakV2DeadLetterRedrive(t *testing.T) {
	rep, err := RunV2(Scenario{
		Seed:        7,
		Jobs:        40,
		Workers:     4,
		FaultRate:   0.4,
		MaxAttempts: 2,
		Visibility:  150 * time.Millisecond,
		Timeout:     90 * time.Second,
	})
	if err != nil {
		t.Fatalf("%v\nreplay with CHAOS_SEED=7", err)
	}
	t.Logf("v2 DLQ soak: %s", rep)
	if rep.DeadLettered == 0 {
		t.Error("no job was dead-lettered; the redrive path went untested")
	}
	if rep.Redriven == 0 {
		t.Error("nothing was redriven")
	}
}

// TestChaosReplayDeterminism checks the harness's core promise: the same
// seed arms the same faults and fires them on the same evaluations, so
// the registry summary of two runs with one seed matches exactly.
func TestChaosReplayDeterminism(t *testing.T) {
	run := func() string {
		reg := faultinject.New(42)
		armV2(reg, 0.5)
		var out string
		for i := 0; i < 500; i++ {
			if reg.Fire(faultinject.PointQueuePublish) != nil {
				out += "p"
			}
			if reg.Fire(faultinject.PointDriverCrashBeforeAck) != nil {
				out += "c"
			}
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%q\n%q", a, b)
	}
}

// TestV2FailoverToStandby kills the primary broker mid-run and checks
// the drivers move to the mirror and finish the work from there.
func TestV2FailoverToStandby(t *testing.T) {
	primary := queue.NewBroker()
	standby := queue.NewBroker()
	primary.Mirror(standby)
	defer standby.Close()

	// The driver starts paused so the primary dies before it can serve a
	// single job — otherwise the fast jobs all finish on the primary and
	// the mirror only ever sees copies.
	cfg := worker.Config{
		PollInterval: time.Millisecond,
		Visibility:   time.Second,
		Paused:       true,
	}
	cfgSrv := worker.NewConfigServer(cfg)
	node := worker.NewNode(worker.DefaultNodeConfig("failover-w1"))
	d := worker.NewDriver(node, primary, cfgSrv)
	d.SetStandby(standby)
	d.Start()
	defer d.Stop()

	const jobs = 10
	for i := 0; i < jobs; i++ {
		if _, err := primary.Publish(worker.TopicJobs, worker.EncodeJob(chaosJob(i))); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	// Give the mirror goroutines a moment to copy the publishes, then
	// kill the primary out from under the driver and unpause it.
	time.Sleep(20 * time.Millisecond)
	primary.Close()
	if _, err := primary.Publish(worker.TopicJobs, nil); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("publish on closed broker: %v", err)
	}
	cfg.Paused = false
	cfgSrv.Update(cfg)

	// Every job was mirrored, so the standby can serve all of them; the
	// results land on the standby too.
	dedup := worker.NewResultDedup(0)
	graded := map[string]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(graded) < jobs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs finished on the standby (failovers=%d)",
				len(graded), jobs, d.Failovers())
		}
		del, ok, err := standby.Poll(worker.TopicResults, "t", map[string]bool{}, time.Second)
		if err != nil {
			t.Fatalf("standby poll: %v", err)
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		res, derr := worker.DecodeResult(del.Msg.Payload)
		if derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if dedup.Accept(res.JobID, res.Attempt) {
			graded[res.JobID] = true
		}
		_ = del.Ack()
	}
	if got := d.Failovers(); got != 1 {
		t.Errorf("Failovers() = %d, want 1", got)
	}
}
