// Package chaostest is the seeded chaos soak harness for the job
// pipeline: it pushes a batch of real compile/run jobs through either
// architecture while injecting faults — failed publishes, failed acks,
// worker crashes around the ack, transient compile/exec failures, worker
// churn — and then checks the at-least-once invariants:
//
//   - every job reaches exactly one terminal outcome (graded once, or
//     parked in the dead-letter queue until an operator redrive);
//   - no result is ever counted twice (duplicates from redelivery are
//     detected and dropped);
//   - the broker's conservation invariant holds: published = acked +
//     dead + inflight + visible (Broker.Unaccounted() == 0).
//
// Every random decision flows from Scenario.Seed, so a failing run is
// replayed by re-running with the seed the error message reports.
package chaostest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/labs"
	"webgpu/internal/queue"
	"webgpu/internal/worker"
)

// Scenario configures one chaos soak run.
type Scenario struct {
	Seed         int64
	Jobs         int           // jobs to push through the pipeline
	Workers      int           // worker nodes / drivers
	FaultRate    float64       // base per-evaluation fault probability
	Visibility   time.Duration // v2 job lease (short = fast redelivery)
	PollInterval time.Duration // v2 driver poll cadence
	Timeout      time.Duration // overall deadline for the soak
	KillWorkers  bool          // churn the pool while jobs are in flight
	MaxAttempts  int           // v2 dead-letter threshold (0 = broker default)
}

// withDefaults fills unset fields with soak-friendly values.
func (s Scenario) withDefaults() Scenario {
	if s.Jobs <= 0 {
		s.Jobs = 100
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.FaultRate <= 0 {
		s.FaultRate = 0.1
	}
	if s.Visibility <= 0 {
		s.Visibility = 150 * time.Millisecond
	}
	if s.PollInterval <= 0 {
		s.PollInterval = time.Millisecond
	}
	if s.Timeout <= 0 {
		s.Timeout = 60 * time.Second
	}
	return s
}

// Report summarises a soak run: what the chaos did and how the system
// absorbed it.
type Report struct {
	Seed         int64
	Jobs         int
	Graded       int   // jobs with exactly one accepted result
	Duplicates   int64 // redelivered results dropped by dedup
	DeadLettered int64 // cumulative dead-letter entries during chaos
	Redriven     int   // dead letters requeued once faults stopped
	Retries      int64 // v1 dispatch retries
	Faults       string
}

func (r Report) String() string {
	return fmt.Sprintf("seed=%d jobs=%d graded=%d dups=%d dead=%d redriven=%d retries=%d",
		r.Seed, r.Jobs, r.Graded, r.Duplicates, r.DeadLettered, r.Redriven, r.Retries)
}

// chaosLab is the lab every soak job runs; its reference solution
// compiles and grades quickly.
const chaosLab = "vector-add"

func chaosJob(i int) *worker.Job {
	l := labs.ByID(chaosLab)
	return &worker.Job{
		ID:           fmt.Sprintf("chaos-%04d", i),
		LabID:        l.ID,
		UserID:       fmt.Sprintf("u%03d", i%7),
		SubmissionID: fmt.Sprintf("s%04d", i),
		Source:       l.Reference,
		DatasetID:    0,
	}
}

// fail builds a replayable error: the seed and the fault registry's
// fired/evaluated summary ride along.
func fail(s Scenario, reg *faultinject.Registry, format string, args ...interface{}) error {
	return fmt.Errorf("%s (replay with seed=%d; %s)",
		fmt.Sprintf(format, args...), s.Seed, reg.String())
}

// armV2 enables the v2 fault points at probabilities derived from the
// scenario's base rate.
func armV2(reg *faultinject.Registry, rate float64) {
	reg.Enable(faultinject.PointQueuePublish, faultinject.Fault{Prob: rate * 0.5})
	reg.Enable(faultinject.PointQueueAck, faultinject.Fault{Prob: rate * 0.5})
	reg.Enable(faultinject.PointQueuePoll, faultinject.Fault{Prob: rate * 0.2})
	reg.Enable(faultinject.PointDriverCrashBeforeAck, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointDriverCrashAfterPublish, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointDriverPublishResult, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointNodeCompile, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointNodeExec, faultinject.Fault{Prob: rate * 0.5})
}

// RunV2 soaks the broker architecture. Phase 1 runs with faults armed
// until every job is terminal — graded at least once or dead-lettered.
// Phase 2 stops the chaos, redrives the dead letters, and drains the
// pipeline, after which every job must be graded exactly once and the
// broker's counters must balance.
func RunV2(s Scenario) (Report, error) {
	s = s.withDefaults()
	reg := faultinject.New(s.Seed)
	rep := Report{Seed: s.Seed, Jobs: s.Jobs}
	deadline := time.Now().Add(s.Timeout)

	broker := queue.NewBroker()
	standby := queue.NewBroker()
	broker.Mirror(standby)
	broker.SetFaults(reg)
	if s.MaxAttempts > 0 {
		broker.SetMaxAttempts(s.MaxAttempts)
	}
	defer broker.Close()
	defer standby.Close()

	cfgSrv := worker.NewConfigServer(worker.Config{
		PollInterval: s.PollInterval,
		Visibility:   s.Visibility,
	})
	fleet := worker.NewFleet(broker, cfgSrv, func(id string) *worker.Node {
		cfg := worker.DefaultNodeConfig(id)
		cfg.Faults = reg
		return worker.NewNode(cfg)
	})
	fleet.SetStandby(standby)
	fleet.SetFaults(reg)
	fleet.Scale(s.Workers)
	defer fleet.Stop()

	// Result consumer: dedups by job ID so each job grades exactly once
	// no matter how many times redelivery re-executed it. A short lease
	// keeps failed acks (injected) from stalling the drain.
	var (
		mu     sync.Mutex
		graded = map[string]int{}
	)
	dedup := worker.NewResultDedup(0)
	consumerDone := make(chan struct{})
	consumerStop := make(chan struct{})
	go func() {
		defer close(consumerDone)
		caps := map[string]bool{}
		for {
			select {
			case <-consumerStop:
				return
			default:
			}
			d, ok, err := broker.Poll(worker.TopicResults, "chaos-consumer", caps, 200*time.Millisecond)
			if err != nil {
				// ErrClosed only happens at teardown; injected poll faults
				// are transient either way.
				time.Sleep(time.Millisecond)
				continue
			}
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			res, derr := worker.DecodeResult(d.Msg.Payload)
			if derr != nil {
				_ = d.Nack()
				continue
			}
			if dedup.Accept(res.JobID, res.Attempt) {
				mu.Lock()
				graded[res.JobID]++
				mu.Unlock()
			}
			_ = d.Ack() // a failed ack redelivers; dedup drops the rerun
		}
	}()
	defer func() {
		close(consumerStop)
		<-consumerDone
	}()

	// Optional worker churn: repeatedly kill one driver and replace it,
	// on a cadence drawn from the scenario seed.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	if s.KillWorkers {
		churn := rand.New(rand.NewSource(s.Seed ^ 0x5DEECE66D))
		go func() {
			defer close(churnDone)
			for {
				pause := time.Duration(20+churn.Intn(60)) * time.Millisecond
				select {
				case <-churnStop:
					return
				case <-time.After(pause):
				}
				fleet.Scale(s.Workers - 1)
				fleet.Scale(s.Workers)
			}
		}()
	} else {
		close(churnDone)
	}
	stopChurn := func() {
		select {
		case <-churnStop:
		default:
			close(churnStop)
		}
		<-churnDone
	}
	defer stopChurn()

	// Phase 1: submit under fire. Publishes themselves can fail, so
	// submission retries until the broker takes each job.
	armV2(reg, s.FaultRate)
	for i := 0; i < s.Jobs; i++ {
		job := chaosJob(i)
		for {
			_, err := broker.Publish(worker.TopicJobs, worker.EncodeJob(job))
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return rep, fail(s, reg, "chaos v2: publish of %s never succeeded", job.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Wait until every job is terminal: graded, or parked in the DLQ.
	for {
		mu.Lock()
		done := len(graded)
		mu.Unlock()
		terminal := map[string]bool{}
		for _, m := range broker.DeadLetters() {
			if j, err := worker.DecodeJob(m.Payload); err == nil {
				terminal[j.ID] = true
			}
		}
		mu.Lock()
		for id := range graded {
			terminal[id] = true
		}
		mu.Unlock()
		if len(terminal) >= s.Jobs {
			break
		}
		if time.Now().After(deadline) {
			return rep, fail(s, reg, "chaos v2: only %d/%d jobs terminal (graded=%d, dead=%d)",
				len(terminal), s.Jobs, done, len(broker.DeadLetters()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.DeadLettered = broker.Stats().DeadLetters

	// Phase 2: stop the chaos, redrive the dead letters, drain. The
	// conservation check below would be meaningless while faults still
	// fire, and worker churn could strand a lease right at the deadline.
	stopChurn()
	reg.DisableAll()
	for {
		// Keep redriving: a job that was mid-flight at the phase switch
		// can still trickle into the DLQ after the first redrive.
		rep.Redriven += broker.RedriveDeadLetters()
		mu.Lock()
		done := len(graded)
		mu.Unlock()
		if done >= s.Jobs &&
			broker.Depth(worker.TopicJobs) == 0 &&
			broker.Depth(worker.TopicResults) == 0 &&
			len(broker.DeadLetters()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return rep, fail(s, reg, "chaos v2: drain stalled: graded=%d/%d, jobs depth=%d, results depth=%d, dead=%d",
				done, s.Jobs, broker.Depth(worker.TopicJobs), broker.Depth(worker.TopicResults),
				len(broker.DeadLetters()))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Invariants.
	mu.Lock()
	rep.Graded = len(graded)
	for id, n := range graded {
		if n != 1 {
			mu.Unlock()
			return rep, fail(s, reg, "chaos v2: job %s graded %d times", id, n)
		}
	}
	mu.Unlock()
	rep.Duplicates = dedup.Duplicates()
	if rep.Graded != s.Jobs {
		return rep, fail(s, reg, "chaos v2: graded %d of %d jobs", rep.Graded, s.Jobs)
	}
	if u := broker.Unaccounted(); u != 0 {
		return rep, fail(s, reg, "chaos v2: broker counters unbalanced by %d (positive = lost, negative = double-counted)", u)
	}
	rep.Faults = reg.String()
	return rep, nil
}

// RunV1 soaks the push architecture. v1 has no broker, so the retry
// logic under test is Dispatch's own backoff; jobs whose dispatch
// exhausts its budget are the v1 analog of dead letters and are
// re-dispatched in phase 2 once the chaos stops.
func RunV1(s Scenario) (Report, error) {
	s = s.withDefaults()
	reg := faultinject.New(s.Seed)
	rep := Report{Seed: s.Seed, Jobs: s.Jobs}

	registry := worker.NewRegistry(time.Hour) // no eviction: churn is explicit
	registry.SetFaults(reg)
	registry.SetRetry(12, time.Millisecond)
	mkNode := func(i int) *worker.Node {
		cfg := worker.DefaultNodeConfig(fmt.Sprintf("chaos-w%02d", i))
		cfg.Faults = reg
		return worker.NewNode(cfg)
	}
	for i := 0; i < s.Workers; i++ {
		registry.Register(mkNode(i))
	}

	reg.Enable(faultinject.PointV1Push, faultinject.Fault{Prob: s.FaultRate})
	reg.Enable(faultinject.PointNodeCompile, faultinject.Fault{Prob: s.FaultRate * 0.3})
	reg.Enable(faultinject.PointNodeExec, faultinject.Fault{Prob: s.FaultRate * 0.5})

	// Optional churn: deregister one worker, register a fresh one, so
	// dispatches race against a shrinking pool.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	if s.KillWorkers {
		churn := rand.New(rand.NewSource(s.Seed ^ 0x5DEECE66D))
		go func() {
			defer close(churnDone)
			next := s.Workers
			for {
				pause := time.Duration(20+churn.Intn(60)) * time.Millisecond
				select {
				case <-churnStop:
					return
				case <-time.After(pause):
				}
				victim := fmt.Sprintf("chaos-w%02d", churn.Intn(next))
				registry.Deregister(victim)
				registry.Register(mkNode(next))
				next++
			}
		}()
	} else {
		close(churnDone)
	}
	defer func() {
		select {
		case <-churnStop:
		default:
			close(churnStop)
		}
		<-churnDone
	}()

	// Phase 1: dispatch everything concurrently under fire.
	var (
		mu     sync.Mutex
		graded = map[string]int{}
		failed []*worker.Job
	)
	ctx, cancel := context.WithTimeout(context.Background(), s.Timeout)
	defer cancel()
	jobs := make(chan int)
	var wg sync.WaitGroup
	conc := s.Workers * 2
	if conc > 8 {
		conc = 8
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				job := chaosJob(i)
				res, err := registry.Dispatch(ctx, job)
				mu.Lock()
				switch {
				case err != nil:
					failed = append(failed, job) // v1's dead letter
				case res == nil:
					failed = append(failed, job)
				default:
					graded[job.ID]++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < s.Jobs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() != nil {
		return rep, fail(s, reg, "chaos v1: soak hit the %s timeout", s.Timeout)
	}
	rep.DeadLettered = int64(len(failed))

	// Phase 2: chaos off, re-dispatch the give-ups (the operator redrive).
	reg.DisableAll()
	for _, job := range failed {
		res, err := registry.Dispatch(context.Background(), job)
		if err != nil || res == nil {
			return rep, fail(s, reg, "chaos v1: job %s failed even without faults: %v", job.ID, err)
		}
		mu.Lock()
		graded[job.ID]++
		mu.Unlock()
	}
	rep.Redriven = len(failed)

	// Invariants: every job graded exactly once.
	rep.Graded = len(graded)
	rep.Retries = registry.Retries()
	for id, n := range graded {
		if n != 1 {
			return rep, fail(s, reg, "chaos v1: job %s graded %d times", id, n)
		}
	}
	if rep.Graded != s.Jobs {
		return rep, fail(s, reg, "chaos v1: graded %d of %d jobs", rep.Graded, s.Jobs)
	}
	rep.Faults = reg.String()
	return rep, nil
}
