package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if err := r.Fire(PointQueuePublish); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	r.Enable(PointQueuePublish, Fault{})
	r.Disable(PointQueuePublish)
	r.DisableAll()
	if r.Fired(PointQueuePublish) != 0 || r.Evaluations(PointQueuePublish) != 0 || r.FiredTotal() != 0 {
		t.Error("nil registry reported activity")
	}
	if r.Seed() != 0 {
		t.Error("nil registry has a seed")
	}
	if got := r.String(); got != "faultinject: disabled" {
		t.Errorf("String() = %q", got)
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if err := r.Fire("not.armed"); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
}

func TestAlwaysFire(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{})
	for i := 0; i < 5; i++ {
		if err := r.Fire("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d = %v, want ErrInjected", i, err)
		}
	}
	if r.Fired("p") != 5 || r.Evaluations("p") != 5 {
		t.Errorf("fired=%d evals=%d", r.Fired("p"), r.Evaluations("p"))
	}
}

func TestOnce(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{Once: true})
	if err := r.Fire("p"); err == nil {
		t.Fatal("once point did not fire")
	}
	for i := 0; i < 10; i++ {
		if err := r.Fire("p"); err != nil {
			t.Fatalf("once point fired twice: %v", err)
		}
	}
	if r.Fired("p") != 1 {
		t.Errorf("fired = %d", r.Fired("p"))
	}
}

func TestCountBoundsFires(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{Count: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if r.Fire("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
}

func TestAfterSkipsEarlyEvaluations(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{After: 2, Once: true})
	for i := 0; i < 2; i++ {
		if err := r.Fire("p"); err != nil {
			t.Fatalf("fired during the After window: %v", err)
		}
	}
	if err := r.Fire("p"); err == nil {
		t.Fatal("did not fire on evaluation 3")
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	r := New(1)
	r.Enable("p", Fault{Err: boom, Once: true})
	if err := r.Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestLatencyOnlyFault(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{Latency: 5 * time.Millisecond, Once: true})
	start := time.Now()
	if err := r.Fire("p"); err != nil {
		t.Fatalf("latency-only fault returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("slept %v, want >= 5ms", elapsed)
	}
	if r.Fired("p") != 1 {
		t.Errorf("fired = %d", r.Fired("p"))
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		r := New(seed)
		r.Enable("p", Fault{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Fire("p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing sequences")
	}
	// ~50% of 64 evaluations should fire; allow a wide statistical band.
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 16 || fired > 48 {
		t.Errorf("prob 0.5 fired %d/64 times", fired)
	}
}

func TestReEnableResetsCounters(t *testing.T) {
	r := New(1)
	r.Enable("p", Fault{Once: true})
	_ = r.Fire("p")
	r.Enable("p", Fault{Once: true})
	if err := r.Fire("p"); err == nil {
		t.Fatal("re-armed point did not fire")
	}
}

func TestDisableAndDisableAll(t *testing.T) {
	r := New(1)
	r.Enable("a", Fault{})
	r.Enable("b", Fault{})
	r.Disable("a")
	if err := r.Fire("a"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if err := r.Fire("b"); err == nil {
		t.Fatal("point b should still fire")
	}
	r.DisableAll()
	if err := r.Fire("b"); err != nil {
		t.Fatalf("point fired after DisableAll: %v", err)
	}
}

func TestStringSummary(t *testing.T) {
	r := New(99)
	r.Enable("b.point", Fault{})
	r.Enable("a.point", Fault{})
	_ = r.Fire("a.point")
	s := r.String()
	if !strings.Contains(s, "seed=99") || !strings.Contains(s, "a.point=1/1") ||
		!strings.Contains(s, "b.point=0/0") {
		t.Errorf("String() = %q", s)
	}
	if strings.Index(s, "a.point") > strings.Index(s, "b.point") {
		t.Errorf("points not sorted: %q", s)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	r := New(7)
	r.Enable("p", Fault{Prob: 0.5})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				_ = r.Fire("p")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if evals := r.Evaluations("p"); evals != 4000 {
		t.Errorf("evaluations = %d, want 4000", evals)
	}
	if fired := r.Fired("p"); fired < 1000 || fired > 3000 {
		t.Errorf("fired = %d, want ~2000", fired)
	}
}

func ExampleRegistry_Fire() {
	r := New(1)
	r.Enable(PointQueuePublish, Fault{Once: true})
	fmt.Println(r.Fire(PointQueuePublish) != nil)
	fmt.Println(r.Fire(PointQueuePublish) != nil)
	// Output:
	// true
	// false
}
