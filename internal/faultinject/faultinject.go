// Package faultinject is a deterministic, seeded fault-injection layer
// for the WebGPU pipeline. Production code declares named *fault points*
// at the places where real deployments fail — a broker publish, a result
// ack, a worker compile, a WAL append — and calls Fire at each one. With
// no registry attached (the nil *Registry), Fire is a single nil check
// and the pipeline runs exactly as before; with a registry, each armed
// point injects errors and/or latency according to its trigger
// (probability, bounded count, one-shot, skip-the-first-N), drawing from
// a seeded PRNG so a chaos run can be replayed by seed.
//
// The package exists so the v2 architecture's fault machinery — lease
// expiry and redelivery, dead-letter queues, the mirrored broker, v1's
// dispatch retry — is exercised by tests instead of trusted on faith
// (§VI-A builds all of it precisely to survive these faults).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error returned by an armed fault point with
// no explicit Err configured. Errors returned by Fire wrap it, so callers
// (and tests) can detect an injected failure with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault-point catalog: every point the pipeline declares, in one place so
// chaos scenarios and DESIGN.md stay in sync with the code.
const (
	// Broker hot path (internal/queue).
	PointQueuePublish = "queue.publish" // Broker.Publish fails before enqueue
	PointQueuePoll    = "queue.poll"    // Broker.Poll fails before leasing
	PointQueueAck     = "queue.ack"     // Delivery.Ack fails (lease will expire)

	// v2 driver (internal/worker, Driver.loop).
	PointDriverCrashBeforeAck    = "driver.crash_before_ack"    // crash after execute, before the result publish: job re-runs elsewhere
	PointDriverCrashAfterPublish = "driver.crash_after_publish" // crash between result publish and ack: the duplicate-result hole
	PointDriverPublishResult     = "driver.publish_result"      // the result publish itself fails: driver nacks and the job retries

	// Worker node pipeline (internal/worker, Node.Execute).
	PointNodeCompile = "node.compile" // transient compile-infrastructure failure
	PointNodeExec    = "node.exec"    // transient execution-infrastructure failure

	// v1 push dispatch (internal/worker, Registry.Dispatch).
	PointV1Push = "v1.push" // the push to the selected worker fails; dispatch backs off and retries

	// Database durability (internal/db).
	PointWALAppend = "wal.append" // the write-ahead-log append fails; the commit surfaces the error

	// Durable artifact store (internal/castore).
	PointCAStoreRead  = "castore.read"  // a store read fails mid-flight; the caller treats it as a miss
	PointCAStoreWrite = "castore.write" // a store write fails before the atomic rename; nothing is persisted
)

// Fault configures one armed fault point.
type Fault struct {
	// Prob is the per-evaluation firing probability in (0, 1]. Zero means
	// "always fire" (subject to After/Count/Once), so the common
	// deterministic configuration needs no fields beyond the trigger.
	Prob float64

	// After suppresses the first N evaluations of the point — "crash on
	// the third publish" is Fault{After: 2, Once: true}.
	After int

	// Count bounds how many times the point fires; 0 is unlimited.
	Count int

	// Once is shorthand for Count: 1.
	Once bool

	// Err is the injected error. When nil and Latency is zero, Fire
	// returns an error wrapping ErrInjected; when nil and Latency is set,
	// the point injects latency only and Fire returns nil.
	Err error

	// Latency is slept on each fire before Fire returns — a slow disk, a
	// congested broker link.
	Latency time.Duration
}

type point struct {
	fault Fault
	evals int64
	fired int64
}

// Registry holds the armed fault points of one chaos scenario. The nil
// *Registry is valid everywhere and injects nothing; components accept a
// *Registry and simply call Fire.
type Registry struct {
	mu     sync.Mutex
	seed   int64
	rng    *rand.Rand
	points map[string]*point
}

// New creates a registry whose probabilistic triggers draw from a PRNG
// seeded with seed. Two single-threaded runs with the same seed and the
// same Fire sequence make identical firing decisions; concurrent runs
// replay the same fault *rates* (goroutine interleaving perturbs which
// exact evaluation fires).
func New(seed int64) *Registry {
	return &Registry{
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		points: map[string]*point{},
	}
}

// Seed returns the registry's seed, for replay logs.
func (r *Registry) Seed() int64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// Enable arms (or re-arms, resetting counters) a fault point.
func (r *Registry) Enable(name string, f Fault) {
	if r == nil {
		return
	}
	if f.Once && f.Count == 0 {
		f.Count = 1
	}
	r.mu.Lock()
	r.points[name] = &point{fault: f}
	r.mu.Unlock()
}

// Disable disarms a fault point; its counters are discarded.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.points, name)
	r.mu.Unlock()
}

// DisableAll disarms every point — the "chaos off, let the system drain"
// phase of a soak run.
func (r *Registry) DisableAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points = map[string]*point{}
	r.mu.Unlock()
}

// Fire evaluates a fault point. It returns nil when the registry is nil,
// the point is not armed, or the trigger decides not to fire; otherwise
// it sleeps the configured latency and returns the configured error (nil
// for latency-only faults). This is the only call production code makes.
func (r *Registry) Fire(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	p.evals++
	if p.evals <= int64(p.fault.After) {
		r.mu.Unlock()
		return nil
	}
	if p.fault.Count > 0 && p.fired >= int64(p.fault.Count) {
		r.mu.Unlock()
		return nil
	}
	if p.fault.Prob > 0 && r.rng.Float64() >= p.fault.Prob {
		r.mu.Unlock()
		return nil
	}
	p.fired++
	f := p.fault
	r.mu.Unlock()

	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Err != nil {
		return f.Err
	}
	if f.Latency > 0 {
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}

// Fired reports how many times a point has fired.
func (r *Registry) Fired(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.fired
	}
	return 0
}

// Evaluations reports how many times a point has been evaluated
// (verifies a point is actually wired into the path under test).
func (r *Registry) Evaluations(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.evals
	}
	return 0
}

// FiredTotal sums fires across every armed point.
func (r *Registry) FiredTotal() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, p := range r.points {
		n += p.fired
	}
	return n
}

// String summarizes the registry for a chaos run's replay log:
// seed plus per-point fired/evaluated counts.
func (r *Registry) String() string {
	if r == nil {
		return "faultinject: disabled"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for name := range r.points {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "faultinject: seed=%d", r.seed)
	for _, name := range names {
		p := r.points[name]
		fmt.Fprintf(&sb, " %s=%d/%d", name, p.fired, p.evals)
	}
	return sb.String()
}
