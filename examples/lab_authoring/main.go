// Lab authoring: an instructor defines a brand-new lab — description
// (markdown), solution skeleton, reference solution, dataset generators,
// rubric (§IV-E) — registers it in the catalog, and verifies it the way
// the course staff did before each offering: the skeleton must compile,
// the reference must pass every dataset, and a deliberately wrong
// solution must fail.
package main

import (
	"context"
	"fmt"
	"log"

	"webgpu/internal/gpusim"
	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

func main() {
	saxpy := &labs.Lab{
		ID:      "saxpy",
		Number:  100,
		Name:    "SAXPY",
		Summary: "Single-precision a*X plus Y.",
		Description: `# SAXPY

Implement the BLAS level-1 operation

    y[i] = a * x[i] + y[i]

as a CUDA kernel. The scalar a is passed as a kernel argument.
`,
		Dialect: minicuda.DialectCUDA,
		Skeleton: `__global__ void saxpy(float a, float *x, float *y, int n) {
  //@@ y[i] = a * x[i] + y[i]
}
`,
		Reference: `__global__ void saxpy(float a, float *x, float *y, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
`,
		Questions:   []string{"Why is SAXPY memory-bound on every GPU generation?"},
		Courses:     []labs.Course{labs.CourseECE408},
		NumDatasets: 3,
		Rubric: labs.Rubric{
			CompilePoints: 10, DatasetPoints: 25, QuestionPoints: 15,
		},
		Generate: func(id int) (*wb.Dataset, error) {
			sizes := []int{16, 300, 1024}
			n := sizes[id%len(sizes)]
			a := float32(2.5)
			x := make([]float32, n)
			y := make([]float32, n)
			want := make([]float32, n)
			for i := range x {
				x[i] = float32(i % 17)
				y[i] = float32(i % 5)
				want[i] = a*x[i] + y[i]
			}
			return &wb.Dataset{
				ID:   id,
				Name: "saxpy",
				Inputs: []wb.File{
					{Name: "a.raw", Data: wb.VectorBytes([]float32{a})},
					{Name: "x.raw", Data: wb.VectorBytes(x)},
					{Name: "y.raw", Data: wb.VectorBytes(y)},
				},
				Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
			}, nil
		},
		Harness: func(rc *labs.RunContext) (wb.CheckResult, error) {
			av, err := wb.ParseVector(rc.Dataset.Input("a.raw"))
			if err != nil {
				return wb.CheckResult{}, err
			}
			x, err := wb.ParseVector(rc.Dataset.Input("x.raw"))
			if err != nil {
				return wb.CheckResult{}, err
			}
			y, err := wb.ParseVector(rc.Dataset.Input("y.raw"))
			if err != nil {
				return wb.CheckResult{}, err
			}
			dev := rc.Dev()
			xP, err := dev.MallocFloat32(len(x), x)
			if err != nil {
				return wb.CheckResult{}, err
			}
			yP, err := dev.MallocFloat32(len(y), y)
			if err != nil {
				return wb.CheckResult{}, err
			}
			n := len(x)
			if _, err := rc.Program.Launch(dev, "saxpy",
				rc.Opts(gpusim.D1((n+127)/128), gpusim.D1(128)),
				minicuda.Float(av[0]), minicuda.FloatPtr(xP), minicuda.FloatPtr(yP),
				minicuda.Int(n)); err != nil {
				return wb.CheckResult{}, err
			}
			got, err := dev.ReadFloat32(yP, n)
			if err != nil {
				return wb.CheckResult{}, err
			}
			want, err := wb.ParseVector(rc.Dataset.Expected.Data)
			if err != nil {
				return wb.CheckResult{}, err
			}
			return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
		},
	}

	// Register: this runs the same validation the deployment scripts did.
	if err := labs.Register(saxpy); err != nil {
		log.Fatalf("lab rejected: %v", err)
	}
	fmt.Printf("lab %q registered; max points = %d\n\n", saxpy.ID, saxpy.MaxPoints())

	devices := labs.NewDeviceSet(1)

	fmt.Println("verifying the reference solution against every dataset:")
	for ds := 0; ds < saxpy.NumDatasets; ds++ {
		o := labs.Run(context.Background(), saxpy, saxpy.Reference, ds, devices, 0)
		fmt.Printf("  dataset %d: correct=%v (%s)\n", ds, o.Correct, o.CheckMessage)
		if !o.Correct {
			log.Fatal("reference must pass")
		}
	}

	fmt.Println("\na student's buggy attempt (missing the y term):")
	buggy := `__global__ void saxpy(float a, float *x, float *y, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) y[i] = a * x[i];
}`
	o := labs.Run(context.Background(), saxpy, buggy, 0, devices, 0)
	fmt.Printf("  dataset 0: correct=%v — %s\n", o.Correct, o.CheckMessage)

	fmt.Println("\nthe lab is now in the catalog alongside the Table II labs:")
	for _, l := range labs.ForCourse(labs.CourseECE408) {
		fmt.Printf("  %2d. %s\n", l.Number, l.Name)
	}
	labs.Unregister(saxpy.ID)
}
