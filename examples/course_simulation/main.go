// Course simulation: replay a full Coursera offering against the
// operational models — the Table I enrollment funnel, the Figure 1 hourly
// activity series with its Wednesday deadline spikes, and the provisioning
// policies the paper discusses — then compare elastic WebGPU against a
// statically provisioned HPC cluster.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"webgpu/internal/autoscale"
	"webgpu/internal/cluster"
	"webgpu/internal/workload"
)

func main() {
	fmt.Println("=== 1. Enrollment funnel (Table I) ===")
	fmt.Println()
	rng := rand.New(rand.NewSource(7))
	var rows []workload.YearResult
	for _, params := range workload.CalibratedYears() {
		rows = append(rows, params.Simulate(rng))
	}
	fmt.Println(workload.FormatTableI(rows))

	fmt.Println("=== 2. Hourly activity over the 2015 offering (Figure 1) ===")
	fmt.Println()
	model := workload.Figure1Model()
	series := model.HourlySeries()
	stats := workload.Stats(series)
	fmt.Printf("peak %d active (%s %s), trough %d (%s %s)\n",
		stats.Max, stats.MaxAt.Format("Jan 2"), stats.MaxAt.Weekday(),
		stats.Min, stats.MinAt.Format("Jan 2"), stats.MinAt.Weekday())
	fmt.Println("first three weeks, daily peaks (note the Wednesday spikes):")
	peaks := workload.DailyPeaks(series)
	for _, p := range peaks[:21] {
		fmt.Printf("  %s %s %3d %s\n", p.Time.Format("01/02"),
			p.Time.Weekday().String()[:3], p.Active, bar(p.Active))
	}
	fmt.Println()

	fmt.Println("=== 3. Provisioning the worker fleet for that load ===")
	fmt.Println()
	arrivals := workload.SubmissionArrivals(series, 2.0)
	const svcRate = 30.0
	peak := 0.0
	for _, a := range arrivals {
		if a > peak {
			peak = a
		}
	}
	staticN := int(peak/svcRate) + 1

	show := func(name string, r autoscale.Result) {
		fmt.Printf("  %-10s %7.0f worker-hours  p95 wait %5.2fh  utilization %5.1f%%\n",
			name, r.WorkerHours, r.P95WaitHours, r.UtilizationPct)
	}
	show("static", autoscale.Simulate(arrivals, model.Start, svcRate, autoscale.Static{N: staticN}))
	show("scheduled", autoscale.Simulate(arrivals, model.Start, svcRate, autoscale.Scheduled{
		Base: staticN / 4, Boost: staticN,
		BoostDays: map[time.Weekday]bool{time.Wednesday: true, time.Thursday: true}}))
	show("reactive", autoscale.Simulate(arrivals, model.Start, svcRate,
		autoscale.Reactive{PerWorkerPerHour: svcRate, TargetHours: 1, Min: 1, Max: staticN}))

	ccfg := cluster.DefaultConfig(0)
	ccfg.Nodes = cluster.SizeForPeak(arrivals, ccfg)
	cres := cluster.Simulate(arrivals, ccfg)
	fmt.Printf("  %-10s %7.0f node-hours    p95 wait %5.2fh  utilization %5.1f%%  (%d-node shared campus cluster)\n",
		"cluster", cres.NodeHours, cres.P95WaitHours, cres.UtilizationPct, ccfg.Nodes)

	fmt.Println()
	fmt.Println("the elastic fleet tracks the enrollment decay; the static cluster sized")
	fmt.Println("for week one sits mostly idle from week four on (§II-C).")
}

func bar(n int) string {
	out := make([]byte, n/3)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
