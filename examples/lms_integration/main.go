// LMS integration: the WebGPU 2.0 front-end story (§VI-A) — an
// instructor embeds a lab in an OpenEdx course unit as a programming
// XBlock; a student opens it and arrives at WebGPU through a signed
// launch; the submission is graded on the simulated GPU workers; and the
// normalized score is passed back to the LMS gradebook.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/openedx"
)

func main() {
	secret := []byte("course-v1:UIUC+ECE408+2015_Spring shared secret")
	lms := openedx.NewConnector(secret)

	// 1. The instructor authors the course unit: a programming XBlock
	//    referencing a catalog lab, with a deadline and grade weight.
	deadline := time.Now().AddDate(0, 0, 7)
	xblock, err := openedx.NewXBlock("tiled-matmul", 0.15, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("course unit XBlock:\n  %s\n\n", xblock.Marshal())

	// 2. A student opens the unit; the LMS sends WebGPU a signed launch.
	launch := lms.NewLaunch("lms-anon-8842", "student@university.edu",
		"A. Student", xblock.LabID, time.Now())
	fmt.Printf("signed launch for %s -> lab %q\n", launch.UserID, launch.LabID)

	// 3. WebGPU verifies the signature and freshness before provisioning a
	//    session — a forged or stale launch is rejected.
	if err := launch.Verify(secret, time.Now()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("launch signature verified")
	forged := *launch
	forged.UserID = "someone-else"
	fmt.Printf("forged launch rejected: %v\n\n", forged.Verify(secret, time.Now()) != nil)

	// 4. The student works the lab; on submit, every dataset runs and the
	//    rubric is applied (here: the reference solution).
	l := labs.ByID(launch.LabID)
	outcomes := labs.RunAll(context.Background(), l, l.Reference, labs.NewDeviceSet(1), 0)
	grade := grader.Score(l, l.Reference, outcomes, len(l.Questions))
	grade.UserID = launch.UserID
	fmt.Printf("graded: %d/%d points across %d datasets\n",
		grade.Total, grade.Max, len(outcomes))

	// 5. Grade passback: the LMS gradebook receives the normalized score
	//    under the launch's result id.
	book := openedx.NewGradebook(lms)
	if err := book.Record(grade); err != nil {
		log.Fatal(err)
	}
	score, _ := lms.Score(launch.ResultID)
	fmt.Printf("LMS gradebook %s = %.2f (weight %.2f of the unit)\n",
		launch.ResultID, score, xblock.Weight)
}
