// Quickstart: stand up a complete WebGPU platform in-process, register a
// student, and walk the full §IV-A lab lifecycle — edit, compile, run
// against a dataset, answer the questions, submit for grading — exactly
// as a Coursera student's browser would, over real HTTP.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"webgpu/internal/labs"
	"webgpu/internal/platform"
)

func main() {
	// A v2 deployment: broker, polling workers, replicated DB.
	p := platform.New(platform.Options{Arch: platform.V2, Workers: 2})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	fmt.Printf("WebGPU platform up: %s, %d workers\n\n", p.Arch, p.Workers())

	// Register and keep the session token.
	var reg struct {
		Token string `json:"token"`
		User  struct {
			ID string `json:"id"`
		} `json:"user"`
	}
	post(ts.URL, "", "/api/register",
		map[string]string{"name": "Ada Lovelace", "email": "ada@example.edu"}, &reg)
	fmt.Printf("registered student %s\n", reg.User.ID)

	// Fetch the Vector Addition lab: the skeleton is what the editor shows.
	var lab struct {
		Name     string   `json:"name"`
		Code     string   `json:"code"`
		Datasets []string `json:"datasets"`
	}
	get(ts.URL, reg.Token, "/api/labs/vector-add", &lab)
	fmt.Printf("opened lab %q with %d datasets\n", lab.Name, len(lab.Datasets))

	// Write the kernel (here: the reference solution) and save it.
	solution := labs.ByID("vector-add").Reference
	post(ts.URL, reg.Token, "/api/labs/vector-add/save",
		map[string]string{"source": solution}, nil)

	// Compile.
	var compileRes struct {
		Outcomes []struct {
			Compiled     bool   `json:"Compiled"`
			CompileError string `json:"CompileError"`
		} `json:"outcomes"`
	}
	post(ts.URL, reg.Token, "/api/labs/vector-add/compile", nil, &compileRes)
	fmt.Printf("compiled: %v\n", compileRes.Outcomes[0].Compiled)

	// Run against dataset 0 and show the wbLog/wbTime trace.
	var att struct {
		Outcome struct {
			Correct      bool   `json:"Correct"`
			CheckMessage string `json:"CheckMessage"`
			Trace        string `json:"Trace"`
		} `json:"outcome"`
	}
	post(ts.URL, reg.Token, "/api/labs/vector-add/attempt?dataset=0", nil, &att)
	fmt.Printf("attempt on dataset 0: correct=%v — %s\n",
		att.Outcome.Correct, att.Outcome.CheckMessage)
	fmt.Printf("--- lab output ---\n%s------------------\n", att.Outcome.Trace)

	// Answer the short-answer questions.
	post(ts.URL, reg.Token, "/api/labs/vector-add/questions",
		map[string][]string{"answers": {
			"One add per element.",
			"Without it, tail threads write out of bounds.",
		}}, nil)

	// Submit for grading: every dataset runs, the rubric is applied, and
	// the grade is written back to the (simulated Coursera) gradebook.
	var sub struct {
		Grade struct {
			Total int `json:"total"`
			Max   int `json:"max"`
		} `json:"grade"`
	}
	post(ts.URL, reg.Token, "/api/labs/vector-add/submit", nil, &sub)
	fmt.Printf("\nfinal grade: %d/%d\n", sub.Grade.Total, sub.Grade.Max)

	if g, err := p.Gradebook.Lookup(reg.User.ID, "vector-add"); err == nil {
		fmt.Printf("gradebook write-back confirmed: %d/%d recorded for %s\n",
			g.Total, g.Max, g.UserID)
	}
}

func post(base, token, path string, body, out interface{}) {
	req(base, token, http.MethodPost, path, body, out)
}

func get(base, token, path string, out interface{}) {
	req(base, token, http.MethodGet, path, nil, out)
}

func req(base, token, method, path string, body, out interface{}) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	r, err := http.NewRequest(method, base+path, &buf)
	if err != nil {
		log.Fatal(err)
	}
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	_, _ = raw.ReadFrom(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d %s", method, path, resp.StatusCode, raw.String())
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			log.Fatalf("%s %s: %v in %s", method, path, err, raw.String())
		}
	}
}
