// Offline development (§IV-C): work against the support library without
// the web platform — compile a kernel with the minicuda toolchain, build
// datasets with the wb generators, run on a local simulated GPU, and
// check the solution, exactly what a student with a local CUDA setup did
// with libwb. It also shows the performance counters students use to see
// why the tiled matrix multiply beats the basic one.
package main

import (
	"fmt"
	"log"

	"webgpu/internal/gpusim"
	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

func main() {
	dev := gpusim.NewDefaultDevice()
	fmt.Println(dev.QueryString())

	// Compile both matrix-multiply kernels from the course labs.
	basic, err := minicuda.Compile(labs.ByID("basic-matmul").Reference, minicuda.DialectCUDA)
	if err != nil {
		log.Fatal(err)
	}
	tiled, err := minicuda.Compile(labs.ByID("tiled-matmul").Reference, minicuda.DialectCUDA)
	if err != nil {
		log.Fatal(err)
	}

	// Build a dataset by hand with the wb generators.
	const n = 64
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%7) - 3
		b[i] = float32(i%5) * 0.5
	}
	want := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			want[i*n+j] = acc
		}
	}

	aP, _ := dev.MallocFloat32(n*n, a)
	bP, _ := dev.MallocFloat32(n*n, b)
	cP, _ := dev.Malloc(n * n * 4)

	run := func(prog *minicuda.Program, kernel string) *gpusim.LaunchStats {
		stats, err := prog.Launch(dev, kernel,
			minicuda.LaunchOpts{Grid: gpusim.D2(n/16, n/16), Block: gpusim.D2(16, 16)},
			minicuda.FloatPtr(aP), minicuda.FloatPtr(bP), minicuda.FloatPtr(cP),
			minicuda.Int(n), minicuda.Int(n), minicuda.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		got, err := dev.ReadFloat32(cP, n*n)
		if err != nil {
			log.Fatal(err)
		}
		check := wb.CompareFloats(got, want, wb.DefaultTolerance)
		fmt.Printf("%-22s %s\n", kernel+":", check.Message)
		return stats
	}

	sBasic := run(basic, "matrixMultiply")
	sTiled := run(tiled, "matrixMultiplyShared")

	fmt.Println("\nperformance counters (the numbers the lecture on tiling predicts):")
	fmt.Printf("%-14s %14s %14s %12s %14s\n",
		"kernel", "global loads", "global 128B tx", "shared ops", "sim cycles")
	fmt.Printf("%-14s %14d %14d %12d %14d\n",
		"basic", sBasic.GlobalLoads, sBasic.GlobalTx, sBasic.SharedOps, sBasic.SimCycles)
	fmt.Printf("%-14s %14d %14d %12d %14d\n",
		"tiled", sTiled.GlobalLoads, sTiled.GlobalTx, sTiled.SharedOps, sTiled.SimCycles)
	fmt.Printf("\ntiling cuts global transactions by %.1fx and simulated time by %.1fx\n",
		float64(sBasic.GlobalTx)/float64(sTiled.GlobalTx),
		float64(sBasic.SimCycles)/float64(sTiled.SimCycles))
	fmt.Println("(TILE_WIDTH = 16, so the ideal global-traffic reduction is 16x)")
}
