// Block-level tree reduction into a shared-memory scratch array. Every
// thread loads (up to) two elements, then the stride loop halves the
// active set each round. The __syncthreads() at the top of the loop body
// runs in uniform control flow — all threads reach it — which is exactly
// the shape kernelcheck's barrier-divergence pass expects.
#define BLOCK_SIZE 256
__global__ void total(float *input, float *output, int len) {
  __shared__ float partial[BLOCK_SIZE];
  int t = threadIdx.x;
  int i = blockIdx.x * blockDim.x * 2 + threadIdx.x;
  float sum = 0.0f;
  if (i < len) sum += input[i];
  if (i + blockDim.x < len) sum += input[i + blockDim.x];
  partial[t] = sum;
  for (int stride = blockDim.x / 2; stride >= 1; stride /= 2) {
    __syncthreads();
    if (t < stride) partial[t] += partial[t + stride];
  }
  // A final barrier before thread 0 publishes the block's sum: the loop
  // above ends with stores from the last active round still unordered
  // against this read, and the analyzer (rightly) can't prove the writer
  // set collapsed to thread 0.
  __syncthreads();
  if (t == 0) atomicAdd(output, partial[0]);
}
