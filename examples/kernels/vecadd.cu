// Element-wise vector addition: the canonical first CUDA kernel.
// One thread per element; the bounds guard keeps the last, partially
// filled block from reading past the arrays.
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
