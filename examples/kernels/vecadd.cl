// OpenCL flavor of vector addition: one work-item per element, global
// id in place of the CUDA block/thread index arithmetic.
__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *result, int len) {
  int id = get_global_id(0);
  if (id < len) {
    result[id] = a[id] + b[id];
  }
}
