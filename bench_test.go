// Package webgpu_bench holds the repository-level benchmarks: one per
// paper table and figure (regenerating its core computation), plus the
// derived-experiment cores. Run with
//
//	go test -bench=. -benchmem
//
// cmd/webgpu-bench prints the full human-readable reports; these
// benchmarks time the work those reports are built from.
package webgpu_bench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"webgpu/internal/autoscale"
	"webgpu/internal/cluster"
	"webgpu/internal/labs"
	"webgpu/internal/peerreview"
	"webgpu/internal/platform"
	"webgpu/internal/queue"
	"webgpu/internal/sandbox"
	"webgpu/internal/worker"
	"webgpu/internal/workload"
)

// ---- Table I ---------------------------------------------------------------------

func BenchmarkTable1Enrollment(b *testing.B) {
	params := workload.CalibratedYears()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			_ = p.Simulate(rng)
		}
	}
}

// ---- Figure 1 --------------------------------------------------------------------

func BenchmarkFigure1Activity(b *testing.B) {
	m := workload.Figure1Model()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := m.HourlySeries()
		_ = workload.Stats(series)
	}
}

// ---- Figure 2: v1 push pipeline ----------------------------------------------------

func BenchmarkFigure2V1Pipeline(b *testing.B) {
	p := platform.New(platform.Options{Arch: platform.V1, Workers: 2})
	defer p.Close()
	job := &worker.Job{ID: "bench", LabID: "vector-add",
		Source: labs.ByID("vector-add").Reference, DatasetID: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Registry.Dispatch(context.Background(), job)
		if err != nil || !res.Correct() {
			b.Fatalf("dispatch: %v %v", err, res)
		}
	}
}

// ---- Table II: every lab through the full stack -------------------------------------

func BenchmarkTable2Labs(b *testing.B) {
	for _, l := range labs.All() {
		l := l
		b.Run(l.ID, func(b *testing.B) {
			n := l.NumGPUs
			if n == 0 {
				n = 1
			}
			devices := labs.NewDeviceSet(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := labs.Run(context.Background(), l, l.Reference, 0, devices, 0)
				if !o.Correct {
					b.Fatalf("%s: %s %s", l.ID, o.RuntimeError, o.CheckMessage)
				}
			}
		})
	}
}

// ---- Figure 6: v2 broker pipeline ----------------------------------------------------

func BenchmarkFigure6V2Pipeline(b *testing.B) {
	broker := queue.NewBroker()
	cs := worker.NewConfigServer(worker.DefaultConfig())
	node := worker.NewNode(worker.DefaultNodeConfig("bench-worker"))
	d := worker.NewDriver(node, broker, cs)
	d.Start()
	defer d.Stop()

	src := labs.ByID("vector-add").Reference
	caps := map[string]bool{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &worker.Job{ID: fmt.Sprintf("j%d", i), LabID: "vector-add",
			Source: src, DatasetID: 0}
		if _, err := broker.Publish(worker.TopicJobs, worker.EncodeJob(job)); err != nil {
			b.Fatal(err)
		}
		for {
			del, ok, err := broker.Poll(worker.TopicResults, "bench", caps, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				_ = del.Ack()
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// ---- Figure 7: container pool (D8 ablation) -------------------------------------------

func BenchmarkFigure7ContainerPool(b *testing.B) {
	b.Run("warm-pool", func(b *testing.B) {
		cfg := worker.DefaultNodeConfig("warm")
		cfg.PerImage = 2
		n := worker.NewNode(cfg)
		job := &worker.Job{ID: "j", LabID: "vector-add",
			Source: labs.ByID("vector-add").Reference, DatasetID: 0}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := n.Execute(context.Background(), job); !res.Correct() {
				b.Fatal(res.Error)
			}
		}
	})
	b.Run("cold-start", func(b *testing.B) {
		cfg := worker.DefaultNodeConfig("cold")
		cfg.PerImage = -1
		n := worker.NewNode(cfg)
		job := &worker.Job{ID: "j", LabID: "vector-add",
			Source: labs.ByID("vector-add").Reference, DatasetID: 0}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := n.Execute(context.Background(), job); !res.Correct() {
				b.Fatal(res.Error)
			}
		}
	})
}

// ---- D1: GPU ratio sweep ----------------------------------------------------------------

func BenchmarkGPURatio(b *testing.B) {
	arrivals := make([]float64, 72)
	for i := range arrivals {
		arrivals[i] = 224
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gpus := range []int{1, 2, 4, 8, 16, 32} {
			_ = autoscale.Simulate(arrivals, time.Unix(0, 0), 30, autoscale.Static{N: gpus})
		}
	}
}

// ---- D2: provisioning -----------------------------------------------------------------

func BenchmarkProvisioning(b *testing.B) {
	m := workload.Figure1Model()
	arrivals := workload.SubmissionArrivals(m.HourlySeries(), 2.0)
	policies := []autoscale.Policy{
		autoscale.Static{N: 9},
		autoscale.Reactive{PerWorkerPerHour: 30, TargetHours: 1, Min: 1, Max: 9},
		autoscale.Scheduled{Base: 2, Boost: 9,
			BoostDays: map[time.Weekday]bool{time.Wednesday: true, time.Thursday: true}},
	}
	ccfg := cluster.DefaultConfig(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			_ = autoscale.Simulate(arrivals, m.Start, 30, p)
		}
		_ = cluster.Simulate(arrivals, ccfg)
	}
}

// ---- D3: dispatch --------------------------------------------------------------------

func BenchmarkDispatch(b *testing.B) {
	b.Run("broker-cycle", func(b *testing.B) {
		broker := queue.NewBroker()
		caps := map[string]bool{"cuda": true}
		payload := []byte("job")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := broker.Publish(worker.TopicJobs, payload); err != nil {
				b.Fatal(err)
			}
			d, ok, err := broker.Poll(worker.TopicJobs, "w", caps, time.Minute)
			if err != nil || !ok {
				b.Fatal("poll failed")
			}
			_ = d.Ack()
		}
	})
	b.Run("registry-dispatch", func(b *testing.B) {
		reg := worker.NewRegistry(time.Minute)
		reg.Register(worker.NewNode(worker.DefaultNodeConfig("w1")))
		job := &worker.Job{ID: "j", LabID: "vector-add",
			Source: labs.ByID("vector-add").Reference, DatasetID: worker.DatasetCompileOnly}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Dispatch(context.Background(), job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- D4: peer review --------------------------------------------------------------------

func BenchmarkPeerReview(b *testing.B) {
	students := make([]string, 2000)
	for i := range students {
		students[i] = fmt.Sprintf("s%04d", i)
	}
	active := map[string]bool{}
	for i := 0; i < 100; i++ {
		active[students[i]] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		as, err := peerreview.AssignRandom("lab", students, 3, rng)
		if err != nil {
			b.Fatal(err)
		}
		_ = peerreview.Starvation(as, active)
	}
}

// ---- D5: security ---------------------------------------------------------------------

func BenchmarkSecurity(b *testing.B) {
	src := labs.ByID("tiled-matmul").Reference
	b.Run("raw-scan", func(b *testing.B) {
		s := sandbox.NewScanner(nil, sandbox.ScanRaw)
		b.SetBytes(int64(len(src)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if vs := s.Scan(src); len(vs) != 0 {
				b.Fatal("clean source flagged")
			}
		}
	})
	b.Run("preprocessed-scan", func(b *testing.B) {
		s := sandbox.NewScanner(nil, sandbox.ScanPreprocessed)
		b.SetBytes(int64(len(src)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if vs := s.Scan(src); len(vs) != 0 {
				b.Fatal("clean source flagged")
			}
		}
	})
}

// ---- D6: tagged dispatch ------------------------------------------------------------------

func BenchmarkTaggedDispatch(b *testing.B) {
	broker := queue.NewBroker()
	// Fill with a mix of tagged jobs.
	for i := 0; i < 512; i++ {
		tags := []string{}
		if i%20 == 0 {
			tags = []string{"mpi", "multi-gpu"}
		}
		if _, err := broker.Publish(worker.TopicJobs, []byte("x"), tags...); err != nil {
			b.Fatal(err)
		}
	}
	plainCaps := map[string]bool{"cuda": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ok, err := broker.Poll(worker.TopicJobs, "w", plainCaps, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			_ = d.Nack() // put it back so the benchmark is steady-state
		}
	}
}

// ---- Compiler / simulator micro-benchmarks ---------------------------------------------

func BenchmarkCompileVectorAdd(b *testing.B) {
	src := labs.ByID("vector-add").Reference
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if o := labs.CompileOnly(labs.ByID("vector-add"), src); !o.Compiled {
			b.Fatal(o.CompileError)
		}
	}
}

func BenchmarkCompileTiledMatMul(b *testing.B) {
	l := labs.ByID("tiled-matmul")
	b.SetBytes(int64(len(l.Reference)))
	for i := 0; i < b.N; i++ {
		if o := labs.CompileOnly(l, l.Reference); !o.Compiled {
			b.Fatal(o.CompileError)
		}
	}
}

// ---- Deadline spike: compile-once pipeline ---------------------------------------------
//
// §VII: "most submissions arrive in the final hours, and the same lab's
// near-identical sources are compiled thousands of times". The spike
// replays a burst of submissions end-to-end through platform dispatch.
// cold-cache makes every source unique (every job compiles); warm-cache
// repeats one source (the first job compiles, the rest hit the
// content-addressed program cache).

func BenchmarkDeadlineSpike(b *testing.B) {
	l := labs.ByID("tiled-matmul")
	spike := func(b *testing.B, datasetID int, unique bool) {
		p := platform.New(platform.Options{Arch: platform.V1, Workers: 2})
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := l.Reference
			if unique {
				src = fmt.Sprintf("%s\n// attempt %d\n", l.Reference, i)
			}
			job := &worker.Job{ID: fmt.Sprintf("spike-%d", i), LabID: l.ID,
				Source: src, DatasetID: datasetID}
			res, err := p.Registry.Dispatch(context.Background(), job)
			if err != nil {
				b.Fatal(err)
			}
			if res.Error != "" || res.Outcomes[0].CompileError != "" {
				b.Fatalf("spike job failed: %+v", res)
			}
		}
	}
	// The frantic pre-deadline compile loop (§IV-A action 2).
	b.Run("compile/cold-cache", func(b *testing.B) { spike(b, worker.DatasetCompileOnly, true) })
	b.Run("compile/warm-cache", func(b *testing.B) { spike(b, worker.DatasetCompileOnly, false) })
	// Full submissions against dataset 0.
	b.Run("run/cold-cache", func(b *testing.B) { spike(b, 0, true) })
	b.Run("run/warm-cache", func(b *testing.B) { spike(b, 0, false) })
}

// BenchmarkRunAllFanout grades a submission against every dataset of a
// multi-dataset lab: compiled once, datasets fanned out across however
// many device slots the container offers. The wider device sets only pay
// off with GOMAXPROCS > 1; on a single CPU the slots time-slice.
func BenchmarkRunAllFanout(b *testing.B) {
	l := labs.ByID("vector-add")
	for _, gpus := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gpus-%d", gpus), func(b *testing.B) {
			devices := labs.NewDeviceSet(gpus)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs := labs.RunAll(context.Background(), l, l.Reference, devices, 0)
				for _, o := range outs {
					if !o.Correct {
						b.Fatalf("dataset %d: %s %s", o.DatasetID, o.RuntimeError, o.CheckMessage)
					}
				}
			}
		})
	}
}

func BenchmarkSimulatedKernelVecAdd(b *testing.B) {
	l := labs.ByID("vector-add")
	devices := labs.NewDeviceSet(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := labs.Run(context.Background(), l, l.Reference, 4, devices, 0) // largest dataset (1333 elems)
		if !o.Correct {
			b.Fatal(o.RuntimeError)
		}
	}
}
